package renaming

import (
	"fmt"
	"sort"
	"strings"
)

// options collects the tunables shared by all namers, plus the record of
// which options the caller actually set — constructors use it to reject
// options that do not apply to them (ErrBadConfig) instead of silently
// ignoring them.
type options struct {
	epsilon     float64
	beta        int
	t0Override  int
	seed        uint64
	padded      bool
	counting    bool
	levelProbes int
	gamma       float64
	resizable   bool

	// set records which options were applied, by option name: the single
	// source of truth for both "was it set" checks (e.g. fastadaptive's
	// ε = 1 rule) and constructor applicability validation.
	set map[string]bool
}

func defaultOptions() options {
	return options{
		epsilon: 1,
		gamma:   1,
		seed:    0x6c6f6f73652d7265, // "loose-re", an arbitrary fixed default
		set:     map[string]bool{},
	}
}

// Option configures a namer constructor.
type Option interface {
	apply(*options) error
}

type optionFunc struct {
	name string
	fn   func(*options) error
}

func (f optionFunc) apply(o *options) error {
	if err := f.fn(o); err != nil {
		return err
	}
	o.set[f.name] = true
	return nil
}

// Option names, used both in applicability sets and error messages.
const (
	optEpsilon     = "WithEpsilon"
	optBeta        = "WithBeta"
	optT0          = "WithT0Override"
	optSeed        = "WithSeed"
	optLevelProbes = "WithLevelProbes"
	optGamma       = "WithGamma"
	optPadded      = "WithPaddedTAS"
	optCounting    = "WithCounting"
	optResizable   = "WithResizable"
)

// universalOptions apply to every namer: they tune the concurrent driver
// (randomness, memory layout, instrumentation), not the algorithm.
var universalOptions = map[string]bool{
	optSeed:     true,
	optPadded:   true,
	optCounting: true,
}

// checkApplicable rejects any set option that is neither universal nor in
// the constructor's allowed list. Constructors call it right after
// collectOptions, so misapplied tunables fail loudly at construction time
// (e.g. WithLevelProbes on ReBatching, WithEpsilon on LevelArray) instead
// of being silently ignored.
func (o *options) checkApplicable(namer string, allowed ...string) error {
	ok := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		ok[a] = true
	}
	var bad []string
	for name := range o.set {
		if !universalOptions[name] && !ok[name] {
			bad = append(bad, name)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return badConfig(namer, strings.Join(bad, ", "), "",
		"option does not apply to this namer")
}

// WithEpsilon sets the namespace slack ε > 0: ReBatching, Adaptive and
// Uniform use namespaces of size ceil((1+ε)n). Smaller ε means tighter
// namespaces and more probes (Eq. 2's t₀ grows like ln(1/ε)/ε). Default 1.
// FastAdaptive accepts only ε = 1 (the paper fixes it); LevelArray's
// per-level slack is the separate WithGamma.
func WithEpsilon(eps float64) Option {
	return optionFunc{optEpsilon, func(o *options) error {
		if !(eps > 0) {
			return badConfig("", optEpsilon, fmt.Sprint(eps), "need eps > 0")
		}
		o.epsilon = eps
		return nil
	}}
}

// WithBeta sets the probe count β >= 1 on the last batch; larger β raises
// the "with high probability" exponent of the step-complexity guarantee
// (Theorem 4.1: β >= 2 bounds the expected step complexity, β >= 3 the
// expected total work). Default 3. Applies to the ReBatching family only.
func WithBeta(beta int) Option {
	return optionFunc{optBeta, func(o *options) error {
		if beta < 1 {
			return badConfig("", optBeta, fmt.Sprint(beta), "need beta >= 1")
		}
		o.beta = beta
		return nil
	}}
}

// WithT0Override replaces the paper's batch-0 probe count
// t₀ = ceil(17·ln(8e/ε)/ε) — 53 probes at ε = 1 — with a custom value.
// The paper's constant is calibrated for worst-case adversarial schedules;
// under realistic scheduling a t₀ of 4-8 preserves the log log n shape and
// dramatically lowers the additive constant (see EXPERIMENTS.md F2).
// Applies to the ReBatching family only.
func WithT0Override(t0 int) Option {
	return optionFunc{optT0, func(o *options) error {
		if t0 < 1 {
			return badConfig("", optT0, fmt.Sprint(t0), "need t0 >= 1")
		}
		o.t0Override = t0
		return nil
	}}
}

// WithSeed fixes the seed behind every caller's probe randomness, making
// name assignment reproducible for a fixed schedule (useful in tests).
// Applies to every namer.
func WithSeed(seed uint64) Option {
	return optionFunc{optSeed, func(o *options) error {
		o.seed = seed
		return nil
	}}
}

// WithLevelProbes sets the number of random probes LevelArray performs per
// level before descending (default 2). More probes per level keep callers
// in the large top levels longer, trading a slightly higher expected probe
// count for a smaller chance of reaching the backup scan. Applies to
// NewLevelArray only.
func WithLevelProbes(t int) Option {
	return optionFunc{optLevelProbes, func(o *options) error {
		if t < 1 {
			return badConfig("", optLevelProbes, fmt.Sprint(t), "need t >= 1")
		}
		o.levelProbes = t
		return nil
	}}
}

// WithGamma sets LevelArray's per-level slack γ > 0: level i holds
// ceil((1+γ)N/2^i) slots, so larger γ means fewer probes and more space.
// Default 1. Applies to NewLevelArray only (the one-shot family's namespace
// slack is the distinct WithEpsilon).
func WithGamma(gamma float64) Option {
	return optionFunc{optGamma, func(o *options) error {
		if !(gamma > 0) {
			return badConfig("", optGamma, fmt.Sprint(gamma), "need gamma > 0")
		}
		o.gamma = gamma
		return nil
	}}
}

// WithResizable builds the namer over a growable TAS space and enables
// online capacity changes through the ResizableNamer interface. Applies
// to NewLevelArray only (the one-shot family's analysis fixes n up
// front). Incompatible with WithPaddedTAS: the elastic space trades the
// per-line padding for growability.
func WithResizable() Option {
	return optionFunc{optResizable, func(o *options) error {
		o.resizable = true
		return nil
	}}
}

// WithPaddedTAS places each TAS object on its own cache line (64 bytes
// instead of 4 per name), eliminating false sharing between adjacent names
// under heavy multicore contention. See the F4 ablation for measurements.
// Applies to every namer.
func WithPaddedTAS() Option {
	return optionFunc{optPadded, func(o *options) error {
		o.padded = true
		return nil
	}}
}

// WithCounting instruments the namer with probe/win counters, readable via
// the Probes method. Adds two atomic increments per probe. Applies to
// every namer.
func WithCounting() Option {
	return optionFunc{optCounting, func(o *options) error {
		o.counting = true
		return nil
	}}
}

func collectOptions(opts []Option) (options, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt.apply(&o); err != nil {
			return options{}, err
		}
	}
	return o, nil
}
