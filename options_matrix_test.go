package renaming

import (
	"errors"
	"fmt"
	"testing"
)

// TestOptionConstructorMatrix drives the full option × constructor matrix:
// every constructor must accept exactly its applicable options and reject
// every other one with ErrBadConfig, so a misapplied tunable can never be
// silently ignored.
func TestOptionConstructorMatrix(t *testing.T) {
	constructors := []struct {
		name string
		mk   func(opts ...Option) (Namer, error)
	}{
		{"rebatching", func(opts ...Option) (Namer, error) { return NewReBatching(16, opts...) }},
		{"adaptive", func(opts ...Option) (Namer, error) { return NewAdaptive(16, opts...) }},
		{"fastadaptive", func(opts ...Option) (Namer, error) { return NewFastAdaptive(16, opts...) }},
		{"levelarray", func(opts ...Option) (Namer, error) { return NewLevelArray(16, opts...) }},
		{"uniform", func(opts ...Option) (Namer, error) { return NewUniform(16, opts...) }},
		{"linearscan", func(opts ...Option) (Namer, error) { return NewLinearScan(16, opts...) }},
	}
	// For each option: a valid instance of it, and the set of constructors
	// that accept it. Everything else must reject it with ErrBadConfig.
	options := []struct {
		name       string
		opt        Option
		applicable map[string]bool
	}{
		{"WithEpsilon", WithEpsilon(0.5), map[string]bool{
			"rebatching": true, "adaptive": true, "uniform": true,
		}},
		{"WithEpsilon(1)", WithEpsilon(1), map[string]bool{
			// fastadaptive admits the option only when it restates the
			// paper's fixed ε = 1.
			"rebatching": true, "adaptive": true, "uniform": true, "fastadaptive": true,
		}},
		{"WithBeta", WithBeta(2), map[string]bool{
			"rebatching": true, "adaptive": true, "fastadaptive": true,
		}},
		{"WithT0Override", WithT0Override(6), map[string]bool{
			"rebatching": true, "adaptive": true, "fastadaptive": true,
		}},
		{"WithGamma", WithGamma(2), map[string]bool{
			"levelarray": true,
		}},
		{"WithLevelProbes", WithLevelProbes(3), map[string]bool{
			"levelarray": true,
		}},
		{"WithSeed", WithSeed(7), map[string]bool{
			"rebatching": true, "adaptive": true, "fastadaptive": true,
			"levelarray": true, "uniform": true, "linearscan": true,
		}},
		{"WithPaddedTAS", WithPaddedTAS(), map[string]bool{
			"rebatching": true, "adaptive": true, "fastadaptive": true,
			"levelarray": true, "uniform": true, "linearscan": true,
		}},
		{"WithCounting", WithCounting(), map[string]bool{
			"rebatching": true, "adaptive": true, "fastadaptive": true,
			"levelarray": true, "uniform": true, "linearscan": true,
		}},
	}

	for _, opt := range options {
		for _, ctor := range constructors {
			t.Run(fmt.Sprintf("%s/%s", opt.name, ctor.name), func(t *testing.T) {
				nm, err := ctor.mk(opt.opt)
				if opt.applicable[ctor.name] {
					if err != nil {
						t.Fatalf("%s rejected applicable %s: %v", ctor.name, opt.name, err)
					}
					if nm == nil {
						t.Fatalf("%s returned nil namer", ctor.name)
					}
					return
				}
				if err == nil {
					t.Fatalf("%s silently accepted inapplicable %s", ctor.name, opt.name)
				}
				if !errors.Is(err, ErrBadConfig) {
					t.Fatalf("%s rejected %s with %v, want ErrBadConfig", ctor.name, opt.name, err)
				}
			})
		}
	}
}

// TestInapplicableOptionErrorIsStructured checks the ConfigError fields
// carry enough to tell the caller what to fix.
func TestInapplicableOptionErrorIsStructured(t *testing.T) {
	_, err := NewReBatching(16, WithLevelProbes(3))
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *ConfigError", err, err)
	}
	if ce.Namer != "rebatching" || ce.Option != "WithLevelProbes" {
		t.Fatalf("ConfigError = %+v, want Namer=rebatching Option=WithLevelProbes", ce)
	}

	// Multiple inapplicable options are reported together.
	_, err = NewLinearScan(16, WithEpsilon(0.5), WithBeta(2))
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ConfigError", err)
	}
	if ce.Option != "WithBeta, WithEpsilon" {
		t.Fatalf("ConfigError.Option = %q, want both offenders listed", ce.Option)
	}

	// Invalid option values carry the value.
	_, err = NewLevelArray(16, WithGamma(-1))
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ConfigError", err)
	}
	if ce.Option != "WithGamma" || ce.Value != "-1" {
		t.Fatalf("ConfigError = %+v, want Option=WithGamma Value=-1", ce)
	}
}

// TestBadConfigTaxonomy pins errors.Is behaviour across the construction
// surface: option validation, constructor arguments and the fastadaptive
// epsilon special case all match ErrBadConfig.
func TestBadConfigTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"option value", func() error { _, err := NewReBatching(8, WithEpsilon(0)); return err }},
		{"constructor arg", func() error { _, err := NewReBatching(0); return err }},
		{"adaptive arg", func() error { _, err := NewAdaptive(0); return err }},
		{"levelarray arg", func() error { _, err := NewLevelArray(0); return err }},
		{"uniform arg", func() error { _, err := NewUniform(0); return err }},
		{"linearscan arg", func() error { _, err := NewLinearScan(0); return err }},
		{"fastadaptive eps", func() error { _, err := NewFastAdaptive(8, WithEpsilon(2)); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatal("configuration accepted")
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}
