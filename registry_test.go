package renaming

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestOpenConstructsAllShippedNamers is the acceptance check: a DSN
// constructs every shipped namer, with tunables applied.
func TestOpenConstructsAllShippedNamers(t *testing.T) {
	cases := []struct {
		dsn      string
		wantType any
	}{
		{"rebatching?n=64&eps=0.5&beta=2&t0=6&seed=9", (*ReBatching)(nil)},
		{"adaptive?n=64&eps=0.5&t0=6", (*Adaptive)(nil)},
		{"fastadaptive?n=64&beta=3&seed=1", (*FastAdaptive)(nil)},
		{"levelarray?n=64&gamma=2&probes=3", (*LevelArray)(nil)},
		{"uniform?n=64&eps=1.5", (*Uniform)(nil)},
		{"linearscan?n=64", (*LinearScan)(nil)},
		{"levelarray?n=64&padded=true&counting=true&seed=11", (*LevelArray)(nil)},
	}
	for _, tc := range cases {
		nm, err := Open(tc.dsn)
		if err != nil {
			t.Errorf("Open(%q): %v", tc.dsn, err)
			continue
		}
		if got, want := reflect.TypeOf(nm), reflect.TypeOf(tc.wantType); got != want {
			t.Errorf("Open(%q) = %v, want %v", tc.dsn, got, want)
			continue
		}
		u, err := nm.Acquire(context.Background())
		if err != nil {
			t.Errorf("Open(%q).Acquire: %v", tc.dsn, err)
			continue
		}
		if u < 0 || u >= nm.Namespace() {
			t.Errorf("Open(%q) name %d outside [0,%d)", tc.dsn, u, nm.Namespace())
		}
	}
}

// TestOpenAppliesParameters spot-checks that DSN parameters actually reach
// the constructed namer rather than being parsed and dropped.
func TestOpenAppliesParameters(t *testing.T) {
	// eps changes the ReBatching namespace: ceil((1+eps)n).
	tight, err := Open("rebatching?n=100&eps=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if tight.Namespace() != 125 {
		t.Errorf("eps=0.25 namespace = %d, want 125", tight.Namespace())
	}
	// counting wires the Probes() counters.
	counted, err := Open("levelarray?n=16&counting=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := counted.(*LevelArray).Probes(); !ok {
		t.Error("counting=1 did not enable Probes()")
	}
	// A long-lived DSN exposes its capacity.
	ll, err := Open("levelarray?n=37")
	if err != nil {
		t.Fatal(err)
	}
	if got := ll.(LongLivedNamer).Capacity(); got != 37 {
		t.Errorf("Capacity() = %d, want 37", got)
	}
	// seed determinism: same DSN, same sequential name sequence.
	seq := func(dsn string) []int {
		nm, err := Open(dsn)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, 16)
		for i := range out {
			out[i], err = nm.Acquire(context.Background())
			if err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	a := seq("rebatching?n=64&seed=5")
	b := seq("rebatching?n=64&seed=5")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed DSNs diverged: %v vs %v", a, b)
	}
}

// TestOpenRejections covers the DSN failure modes, all ErrBadConfig.
func TestOpenRejections(t *testing.T) {
	cases := []struct {
		name string
		dsn  string
	}{
		{"empty", ""},
		{"unknown driver", "quantum?n=64"},
		{"missing n", "rebatching"},
		{"missing n with params", "rebatching?eps=0.5"},
		{"malformed int", "rebatching?n=abc"},
		{"malformed float", "rebatching?n=64&eps=wide"},
		{"malformed bool", "levelarray?n=64&padded=perhaps"},
		{"malformed query", "rebatching?n=64&;bad=%zz"},
		{"unknown key", "rebatching?n=64&probez=3"},
		{"inapplicable key", "levelarray?n=64&eps=0.5"},
		{"inapplicable t0", "uniform?n=64&t0=6"},
		{"eps on fastadaptive", "fastadaptive?n=64&eps=0.5"},
		{"invalid value", "rebatching?n=64&eps=-1"},
		{"zero n", "rebatching?n=0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nm, err := Open(tc.dsn)
			if err == nil {
				t.Fatalf("Open(%q) accepted (%T)", tc.dsn, nm)
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Open(%q) err = %v, want ErrBadConfig", tc.dsn, err)
			}
		})
	}
}

// TestRegisterValidation pins the database/sql-style registration
// contract: empty names, nil drivers and duplicates panic.
func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { Register("", func(*Params) (Namer, error) { return nil, nil }) })
	mustPanic("nil driver", func() { Register("nil-driver", nil) })
	mustPanic("duplicate", func() { Register("rebatching", func(*Params) (Namer, error) { return nil, nil }) })
}

// TestDriversListsBuiltins keeps the registry's contents explicit.
func TestDriversListsBuiltins(t *testing.T) {
	want := []string{"adaptive", "fastadaptive", "levelarray", "linearscan", "rebatching", "uniform"}
	if got := Drivers(); !reflect.DeepEqual(got, want) {
		t.Errorf("Drivers() = %v, want %v", got, want)
	}
}
