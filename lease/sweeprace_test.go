package lease

import (
	"context"
	"testing"
	"time"

	renaming "repro"
)

// TestRenewRacingSweepPopSurvives pins the stale-heap-entry protocol
// under its nastiest interleaving: a sweep has already read its clock and
// is about to pop a lease's old expiry entry when a renewal lands and
// moves the deadline forward. The popped entry is then stale — same
// token, older deadline — and the sweep must skip it rather than reclaim
// the freshly renewed lease.
//
// The interleaving is deterministic via a clock hook: SweepOnce's Now()
// call fires a hook that (in a separate goroutine, so -race watches the
// handoff) renews the lease at T0+9s — one second before its original
// T0+10s deadline, extending it to T0+19s — and then advances the clock
// to T0+11s. The sweep therefore runs with now = T0+11s: past the old
// entry's deadline, inside the renewed one's.
func TestRenewRacingSweepPopSurvives(t *testing.T) {
	nm, err := renaming.NewLevelArray(8)
	if err != nil {
		t.Fatal(err)
	}
	clk := &hookClock{t: time.Unix(1000, 0)}
	m, err := New(nm, Config{TTL: 10 * time.Second, SweepInterval: -1, Shards: 1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	l, err := m.Acquire("hb", 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}

	var renewed Lease
	clk.mu.Lock()
	clk.hook = func() {
		clk.Advance(9 * time.Second) // T0+9: lease live for one more second
		done := make(chan struct{})
		go func() {
			defer close(done)
			var rerr error
			renewed, rerr = m.Renew(l.Name, l.Token, 10*time.Second)
			if rerr != nil {
				t.Errorf("renew racing sweep: %v", rerr)
			}
		}()
		<-done
		clk.Advance(2 * time.Second) // T0+11: past the OLD deadline only
	}
	clk.mu.Unlock()

	if n := m.SweepOnce(); n != 0 {
		t.Fatalf("sweep reclaimed %d leases popping a stale entry, want 0 — renewed lease lost", n)
	}
	got, ok := m.Get(l.Name)
	if !ok {
		t.Fatal("renewed lease gone after sweep popped its stale heap entry")
	}
	if !got.ExpiresAt.Equal(renewed.ExpiresAt) {
		t.Fatalf("lease deadline = %v, want renewed %v", got.ExpiresAt, renewed.ExpiresAt)
	}
	if mt := m.Metrics(); mt.Expired != 0 || mt.Live != 1 {
		t.Fatalf("metrics = %+v, want Expired 0 and the renewed lease live", mt)
	}
	// The holder's token still fences: a follow-up heartbeat succeeds.
	if _, err := m.Renew(l.Name, l.Token, 0); err != nil {
		t.Fatalf("heartbeat after the race: %v", err)
	}
}

// TestHeapBoundedUnderPureHeartbeat drives a renewal-only workload — no
// acquires, no releases, no sweeper — and checks maybeCompact's
// guarantee: lazy deletion may strand one stale entry per renewal, but
// the per-shard expiry heap must stay within 2·live+compactMinHeap
// entries. Without compaction this workload would grow the heap by
// live entries per round, unbounded.
func TestHeapBoundedUnderPureHeartbeat(t *testing.T) {
	const (
		live   = 128
		rounds = 200
	)
	nm, err := renaming.NewLevelArray(256)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	// Shards: 1 keeps every lease in one stripe so the bound is exact.
	m, err := New(nm, Config{TTL: time.Hour, SweepInterval: -1, Shards: 1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	leases, err := m.AcquireBatch(context.Background(), "hb", live, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]RenewItem, live)
	for i, l := range leases {
		items[i] = RenewItem{Name: l.Name, Token: l.Token}
	}
	for round := 0; round < rounds; round++ {
		clk.Advance(time.Second)
		results, err := m.RenewBatch(context.Background(), items, 0)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("round %d item %d: %v", round, i, r.Err)
			}
		}
		sh := &m.shards[0]
		sh.mu.Lock()
		heapLen, liveLen := len(sh.expiries), len(sh.leases)
		sh.mu.Unlock()
		if heapLen > 2*liveLen+compactMinHeap {
			t.Fatalf("round %d: heap %d entries > bound 2·%d+%d — compaction not keeping up",
				round, heapLen, liveLen, compactMinHeap)
		}
	}
	if mt := m.Metrics(); mt.Renewed != int64(live*rounds) {
		t.Fatalf("Renewed = %d, want %d", mt.Renewed, live*rounds)
	}
}
