package lease

import (
	"errors"
	"sync"
	"testing"
	"time"

	renaming "repro"
)

// fakeClock is a manually advanced clock shared by a Manager and its test.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// newTestManager builds a manager over a LevelArray namer with a fake
// clock and no background sweeper, so tests control time and reclamation.
func newTestManager(t *testing.T, capacity int) (*Manager, *fakeClock) {
	t.Helper()
	nm, err := renaming.NewLevelArray(capacity)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{
		TTL:           10 * time.Second,
		SweepInterval: -1,
		Now:           clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, clk
}

func TestAcquireRenewReleaseRoundTrip(t *testing.T) {
	m, clk := newTestManager(t, 8)
	l, err := m.Acquire("worker-1", 0, map[string]string{"zone": "a"})
	if err != nil {
		t.Fatal(err)
	}
	if l.Owner != "worker-1" || l.Meta["zone"] != "a" {
		t.Fatalf("lease fields wrong: %+v", l)
	}
	if want := clk.Now().Add(10 * time.Second); !l.ExpiresAt.Equal(want) {
		t.Fatalf("ExpiresAt = %v, want %v", l.ExpiresAt, want)
	}
	clk.Advance(5 * time.Second)
	renewed, err := m.Renew(l.Name, l.Token, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := clk.Now().Add(10 * time.Second); !renewed.ExpiresAt.Equal(want) {
		t.Fatalf("renewed ExpiresAt = %v, want %v", renewed.ExpiresAt, want)
	}
	if got, ok := m.Get(l.Name); !ok || got.Token != l.Token {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if err := m.Release(l.Name, l.Token); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(l.Name); ok {
		t.Fatal("lease still live after Release")
	}
	mt := m.Metrics()
	if mt.Acquired != 1 || mt.Renewed != 1 || mt.Released != 1 || mt.Live != 0 {
		t.Fatalf("metrics = %+v", mt)
	}
}

func TestTTLClamping(t *testing.T) {
	m, clk := newTestManager(t, 4)
	// Requested TTL beyond MaxTTL (10×TTL = 100s) is capped.
	l, err := m.Acquire("w", time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := clk.Now().Add(100 * time.Second); !l.ExpiresAt.Equal(want) {
		t.Fatalf("capped ExpiresAt = %v, want %v", l.ExpiresAt, want)
	}
	// Explicit short TTL is honored.
	l2, err := m.Acquire("w", time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := clk.Now().Add(time.Second); !l2.ExpiresAt.Equal(want) {
		t.Fatalf("short ExpiresAt = %v, want %v", l2.ExpiresAt, want)
	}
}

func TestExpiryReclaimedBySweep(t *testing.T) {
	m, clk := newTestManager(t, 4)
	l, err := m.Acquire("w", time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if n := m.SweepOnce(); n != 1 {
		t.Fatalf("SweepOnce reclaimed %d, want 1", n)
	}
	if _, ok := m.Get(l.Name); ok {
		t.Fatal("expired lease still live")
	}
	if mt := m.Metrics(); mt.Expired != 1 || mt.Live != 0 {
		t.Fatalf("metrics = %+v", mt)
	}
	// The name is back in the pool: with capacity 4 we can hold 4 again.
	for i := 0; i < 4; i++ {
		if _, err := m.Acquire("w", 0, nil); err != nil {
			t.Fatalf("post-reclaim acquire %d: %v", i, err)
		}
	}
}

func TestRenewAfterExpiryFails(t *testing.T) {
	m, clk := newTestManager(t, 4)
	l, err := m.Acquire("w", time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	if _, err := m.Renew(l.Name, l.Token, 0); !errors.Is(err, ErrExpired) {
		t.Fatalf("Renew after expiry = %v, want ErrExpired", err)
	}
	// The late renewal itself reclaimed the name.
	if _, ok := m.Get(l.Name); ok {
		t.Fatal("lease live after failed renewal")
	}
}

func TestFencingTokens(t *testing.T) {
	m, _ := newTestManager(t, 4)
	l, err := m.Acquire("w", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Renew(l.Name, l.Token+1, 0); !errors.Is(err, ErrWrongToken) {
		t.Fatalf("Renew with bad token = %v, want ErrWrongToken", err)
	}
	if err := m.Release(l.Name, l.Token+1); !errors.Is(err, ErrWrongToken) {
		t.Fatalf("Release with bad token = %v, want ErrWrongToken", err)
	}
	if err := m.Release(l.Name, l.Token); err != nil {
		t.Fatal(err)
	}
	// A re-acquired name gets a fresh token; the stale one stays dead.
	l2, err := m.Acquire("w2", 0, nil)
	for err != nil || l2.Name != l.Name {
		// LevelArray probes randomly; drain acquisitions until the slot
		// recycles (bounded by the namespace size).
		if err != nil {
			t.Fatal(err)
		}
		l2, err = m.Acquire("w2", 0, nil)
	}
	if l2.Token == l.Token {
		t.Fatal("recycled name reused fencing token")
	}
	if _, err := m.Renew(l.Name, l.Token, 0); !errors.Is(err, ErrWrongToken) {
		t.Fatalf("stale holder renewed a recycled name: %v", err)
	}
}

func TestUnknownName(t *testing.T) {
	m, _ := newTestManager(t, 4)
	if _, err := m.Renew(0, 1, 0); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("Renew unknown = %v", err)
	}
	if err := m.Release(0, 1); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("Release unknown = %v", err)
	}
}

func TestNamespaceExhausted(t *testing.T) {
	m, _ := newTestManager(t, 1)
	// Capacity 1 => namespace 2; the pool is dry after two acquisitions.
	for i := 0; i < m.Namespace(); i++ {
		if _, err := m.Acquire("w", 0, nil); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	_, err := m.Acquire("w", 0, nil)
	if !errors.Is(err, renaming.ErrNamespaceExhausted) {
		t.Fatalf("over-capacity acquire = %v, want ErrNamespaceExhausted", err)
	}
}

func TestMaxLiveCapEnforced(t *testing.T) {
	nm, err := renaming.NewLevelArray(8)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{
		TTL:           10 * time.Second,
		SweepInterval: -1,
		MaxLive:       2,
		Now:           clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	l1, err := m.Acquire("w", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire("w", 0, nil); err != nil {
		t.Fatal(err)
	}
	// The namer has ~16 free slots, but the cap says no.
	if _, err := m.Acquire("w", 0, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-cap acquire = %v, want ErrCapacity", err)
	}
	// Releasing frees a cap slot immediately.
	if err := m.Release(l1.Name, l1.Token); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire("w", 0, nil); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	// Capacity pressure reclaims expired leases without waiting for the
	// sweeper: advance past TTL and the cap opens up again.
	clk.Advance(time.Minute)
	if _, err := m.Acquire("w", 0, nil); err != nil {
		t.Fatalf("acquire under pressure after expiry: %v", err)
	}
}

func TestReleaseAfterExpiryFails(t *testing.T) {
	m, clk := newTestManager(t, 4)
	l, err := m.Acquire("w", time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	if err := m.Release(l.Name, l.Token); !errors.Is(err, ErrExpired) {
		t.Fatalf("Release after expiry = %v, want ErrExpired", err)
	}
	// The failed release reclaimed the name (counted as expired, not
	// released).
	if mt := m.Metrics(); mt.Expired != 1 || mt.Released != 0 || mt.Live != 0 {
		t.Fatalf("metrics = %+v", mt)
	}
}

func TestLeasesSnapshotSortedAndIsolated(t *testing.T) {
	m, _ := newTestManager(t, 8)
	meta := map[string]string{"k": "v"}
	for i := 0; i < 5; i++ {
		if _, err := m.Acquire("w", 0, meta); err != nil {
			t.Fatal(err)
		}
	}
	meta["k"] = "mutated-after-acquire"
	ls := m.Leases()
	if len(ls) != 5 {
		t.Fatalf("Leases() returned %d, want 5", len(ls))
	}
	for i := 1; i < len(ls); i++ {
		if ls[i-1].Name >= ls[i].Name {
			t.Fatal("Leases() not sorted by name")
		}
	}
	if ls[0].Meta["k"] != "v" {
		t.Fatal("caller mutation leaked into stored lease meta")
	}
	ls[0].Meta["k"] = "mutated-after-snapshot"
	if got, _ := m.Get(ls[0].Name); got.Meta["k"] != "v" {
		t.Fatal("snapshot mutation leaked into stored lease meta")
	}
}

func TestBackgroundSweeper(t *testing.T) {
	nm, err := renaming.NewLevelArray(4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(nm, Config{TTL: 20 * time.Millisecond, SweepInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Acquire("w", 0, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Metrics().Expired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sweeper never reclaimed the expired lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if mt := m.Metrics(); mt.Live != 0 {
		t.Fatalf("metrics after sweep = %+v", mt)
	}
}

func TestCloseReleasesEverything(t *testing.T) {
	nm, err := renaming.NewLevelArray(4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(nm, Config{SweepInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := m.Acquire("w", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if _, err := m.Acquire("w", 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after Close = %v", err)
	}
	if _, err := m.Renew(l.Name, l.Token, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Renew after Close = %v", err)
	}
	// The namer got its name back: a fresh manager can hand out capacity.
	m2, err := New(nm, Config{SweepInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for i := 0; i < 4; i++ {
		if _, err := m2.Acquire("w", 0, nil); err != nil {
			t.Fatalf("acquire %d on reused namer: %v", i, err)
		}
	}
}

// TestConcurrentLeaseChurn hammers the manager from many goroutines under
// -race: acquire, renew a few times, release, repeat. No operation on a
// correctly-held lease may fail.
func TestConcurrentLeaseChurn(t *testing.T) {
	nm, err := renaming.NewLevelArray(64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(nm, Config{TTL: time.Minute, SweepInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const (
		workers = 16
		cycles  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				l, err := m.Acquire("worker", 0, nil)
				if err != nil {
					t.Errorf("worker %d acquire: %v", id, err)
					return
				}
				for r := 0; r < 3; r++ {
					if _, err := m.Renew(l.Name, l.Token, 0); err != nil {
						t.Errorf("worker %d renew: %v", id, err)
						return
					}
				}
				if err := m.Release(l.Name, l.Token); err != nil {
					t.Errorf("worker %d release: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if mt := m.Metrics(); mt.Live != 0 {
		t.Fatalf("leases leaked: %+v", mt)
	}
}
