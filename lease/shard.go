package lease

import (
	"sync"
	"time"
)

// compactMinHeap is the slack below which a shard never bothers rebuilding
// its expiry heap: lazy deletion is allowed to keep up to 2·live+this many
// entries before a compaction pass reclaims the memory.
const compactMinHeap = 64

// shard is one lock stripe of the manager's lease table. Names route to
// shards by name & (len(shards)-1), so every operation on a given name
// serializes on exactly one shard mutex while operations on other names
// proceed in parallel. The struct is padded to a cache line so adjacent
// shards' mutexes don't false-share under contention.
type shard struct {
	mu     sync.Mutex
	leases map[int]Lease
	// expiries is a lazy min-heap over the shard's lease deadlines; see
	// heapEntry for the staleness protocol.
	expiries expiryHeap

	_ [24]byte // pad to 64 bytes: mutex(8) + map(8) + slice header(24)
}

// sweepLocked drops the shard's expired leases by popping the expiry
// heap until the head is in the future — O(expired) work, not O(live) —
// appending each dropped name to expired and returning the slice. The
// namer hand-back is deliberately NOT done here: namer.Release is outside
// this package's control and can be arbitrarily slow, and one sweep used
// to hold the stripe mutex across O(expired) such calls, stalling every
// Acquire/Renew/Get routed to the stripe. Callers hold sh.mu and must
// pass the returned names to m.releaseNames AFTER unlocking.
func (m *Manager) sweepLocked(sh *shard, now time.Time, expired []int) []int {
	for len(sh.expiries) > 0 && now.After(sh.expiries[0].at) {
		e := sh.expiries.pop()
		l, ok := sh.leases[e.name]
		if !ok || l.Token != e.token {
			continue // stale: released or re-acquired since this entry was pushed
		}
		if !now.After(l.ExpiresAt) {
			continue // renewed: a fresher entry carries the new deadline
		}
		m.expireLocked(sh, e.name, l.Token)
		expired = append(expired, e.name)
	}
	return expired
}

// expireLocked drops name's lapsed lease from the table and settles the
// counters and observer. It does NOT hand the name back to the namer —
// the caller must m.releaseName(name) after unlocking the stripe, so a
// slow namer.Release (or a synchronous journal fsync) never runs under
// sh.mu. Callers hold sh.mu and name routes to sh. The compaction check
// keeps the heap bounded even when reclamation only ever happens lazily
// (sweeper off, leases expiring under Get/Renew/Release) — each lazy
// reclaim strands one stale heap entry.
func (m *Manager) expireLocked(sh *shard, name int, token uint64) {
	delete(sh.leases, name)
	m.live.Add(-1)
	m.expired.Add(1)
	if m.cfg.Observer != nil {
		m.cfg.Observer.ObserveExpire(name, token)
	}
	sh.maybeCompact()
}

// releaseNames hands a batch of reclaimed names back to the namer.
// Callers must NOT hold any stripe lock; failures are counted in
// Metrics.ReclaimFailed by releaseName.
func (m *Manager) releaseNames(names []int) {
	for _, name := range names {
		m.releaseName(name)
	}
}

// maybeCompact rebuilds the shard's expiry heap from its live leases when
// lazy deletion has let stale entries (from renewals and releases)
// outnumber live ones. The 2·live+compactMinHeap threshold makes the
// rebuild amortized O(1) per push while bounding heap memory at O(live)
// even with the background sweeper disabled. Callers hold sh.mu.
func (sh *shard) maybeCompact() {
	if len(sh.expiries) < 2*len(sh.leases)+compactMinHeap {
		return
	}
	sh.expiries = sh.expiries[:0]
	for name, l := range sh.leases {
		sh.expiries = append(sh.expiries, heapEntry{at: l.ExpiresAt, name: name, token: l.Token})
	}
	sh.expiries.init()
}

// releaseName hands a name back to the namer, counting failures: over a
// one-shot namer (whose Release always errors) the slot would otherwise
// leak invisibly on every reclaim.
func (m *Manager) releaseName(name int) error {
	err := m.namer.Release(name)
	if err != nil {
		m.reclaimFailed.Add(1)
	}
	return err
}

// nextPow2 returns the smallest power of two >= n (and >= 1), so shard
// routing can be a mask instead of a modulo.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
