package lease

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	renaming "repro"
)

// TestCapacitySweepSingleFlight pins the reserve-path fix: concurrent
// acquires rejected at MaxLive must coalesce onto ONE reclaim sweep
// instead of each locking every stripe. The interleaving is built
// deterministically with a clock hook: the leader's reclaimForCapacity
// registers its in-flight call and then reads the clock, whose hook
// launches the would-be stampede and parks the leader until every
// straggler has joined the registered call. One sweepAll then serves all
// of them.
func TestCapacitySweepSingleFlight(t *testing.T) {
	const (
		maxLive = 4
		waiters = 6
	)
	nm, err := renaming.NewLevelArray(64)
	if err != nil {
		t.Fatal(err)
	}
	clk := &hookClock{t: time.Unix(1000, 0)}
	m, err := New(nm, Config{TTL: time.Minute, SweepInterval: -1, MaxLive: maxLive, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < maxLive; i++ {
		if _, err := m.Acquire("holder", 0, nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}

	var wg sync.WaitGroup
	waitErrs := make([]error, waiters)
	clk.mu.Lock()
	clk.hook = func() {
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, waitErrs[i] = m.Acquire("straggler", 0, nil)
			}(i)
		}
		deadline := time.Now().Add(10 * time.Second)
		for m.capSweepJoined.Load() < waiters {
			if time.Now().After(deadline) {
				t.Error("stragglers never joined the in-flight capacity sweep")
				return
			}
			time.Sleep(time.Microsecond)
		}
	}
	clk.mu.Unlock()

	if _, err := m.Acquire("leader", 0, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("leader acquire = %v, want ErrCapacity", err)
	}
	wg.Wait()
	for i, err := range waitErrs {
		if !errors.Is(err, ErrCapacity) {
			t.Fatalf("straggler %d err = %v, want ErrCapacity", i, err)
		}
	}
	if runs := m.capSweepsRun.Load(); runs != 1 {
		t.Fatalf("capacity sweeps run = %d for %d concurrent rejections, want 1 (single-flight)",
			runs, waiters+1)
	}
	if joined := m.capSweepJoined.Load(); joined != waiters {
		t.Fatalf("sweeps joined = %d, want %d", joined, waiters)
	}
}

// TestCapacitySweepWorkBounded counts total sweep work under sustained
// ErrCapacity load: with the table full of live leases, every rejected
// acquire performs exactly one reclaim verdict — run or joined, never
// more — so total sweep invocations (run + joined) equal the rejection
// count instead of multiplying with retries, and the run share shrinks
// whenever rejections overlap. Run with -race.
func TestCapacitySweepWorkBounded(t *testing.T) {
	const (
		maxLive = 8
		workers = 8
		rounds  = 50
	)
	nm, err := renaming.NewLevelArray(64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(nm, Config{TTL: time.Minute, SweepInterval: -1, MaxLive: maxLive})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < maxLive; i++ {
		if _, err := m.Acquire("holder", time.Hour, nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := m.Acquire("storm", 0, nil); !errors.Is(err, ErrCapacity) {
					t.Errorf("storm acquire = %v, want ErrCapacity", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	const failures = workers * rounds
	run, joined := m.capSweepsRun.Load(), m.capSweepJoined.Load()
	if run+joined != failures {
		t.Fatalf("sweep verdicts = %d run + %d joined = %d, want exactly %d (one per rejection)",
			run, joined, run+joined, failures)
	}
	if mt := m.Metrics(); mt.Rejected != failures {
		t.Fatalf("Rejected = %d, want %d", mt.Rejected, failures)
	}
}

// TestClosedOperationsCountRejected pins the shutdown accounting fix: the
// early ErrClosed returns used to skip m.rejected while every other
// refusal counted, so Metrics.Rejected under-reported during drain. Every
// post-Close operation must now bump it exactly once.
func TestClosedOperationsCountRejected(t *testing.T) {
	m, _ := newTestManager(t, 8)
	l, err := m.Acquire("w", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	base := m.Metrics().Rejected

	ctx := context.Background()
	ops := []struct {
		name string
		call func() error
	}{
		{"Acquire", func() error { _, err := m.Acquire("w", 0, nil); return err }},
		{"AcquireCtx", func() error { _, err := m.AcquireCtx(ctx, "w", 0, nil); return err }},
		{"AcquireBatch", func() error { _, err := m.AcquireBatch(ctx, "w", 2, 0, nil); return err }},
		{"Renew", func() error { _, err := m.Renew(l.Name, l.Token, 0); return err }},
		{"Release", func() error { return m.Release(l.Name, l.Token) }},
		{"RenewBatch", func() error {
			_, err := m.RenewBatch(ctx, []RenewItem{{Name: l.Name, Token: l.Token}}, 0)
			return err
		}},
		{"ReleaseBatch", func() error {
			_, err := m.ReleaseBatch(ctx, []ReleaseItem{{Name: l.Name, Token: l.Token}})
			return err
		}},
	}
	for i, op := range ops {
		if err := op.call(); !errors.Is(err, ErrClosed) {
			t.Fatalf("%s after Close = %v, want ErrClosed", op.name, err)
		}
		if got, want := m.Metrics().Rejected, base+int64(i+1); got != want {
			t.Fatalf("Rejected after closed %s = %d, want %d", op.name, got, want)
		}
	}
}
