package lease

import "time"

// heapEntry schedules one reclamation check: "at instant `at`, the lease
// on `name` minted with `token` is due to expire". Entries are immutable
// once pushed; Renew pushes a fresh entry for the new deadline instead of
// updating the old one, and stale entries are dropped lazily when popped
// (the token no longer matches, or the lease's deadline moved past the
// entry's). This keeps every push/pop O(log live) with no index tracking.
type heapEntry struct {
	at    time.Time
	name  int
	token uint64
}

// expiryHeap is a binary min-heap of heapEntries ordered by deadline. A
// shard's sweep pops entries while the head is past `now`, so one sweep
// costs O(expired · log live) instead of the O(live) full-map scan the
// pre-sharding manager did.
type expiryHeap []heapEntry

func (h expiryHeap) less(i, j int) bool { return h[i].at.Before(h[j].at) }

func (h *expiryHeap) push(e heapEntry) {
	*h = append(*h, e)
	h.siftUp(len(*h) - 1)
}

// pop removes and returns the earliest entry. Callers check len > 0.
func (h *expiryHeap) pop() heapEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = heapEntry{}
	*h = old[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return top
}

// init heapifies the slice in place after a bulk rebuild.
func (h expiryHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h expiryHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h expiryHeap) siftDown(i int) {
	n := len(h)
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && h.less(left, least) {
			least = left
		}
		if right < n && h.less(right, least) {
			least = right
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
