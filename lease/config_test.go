package lease

import (
	"testing"
	"time"

	renaming "repro"
)

// TestDefaultTTLNeverExceedsMaxTTL is the regression test for the
// applyDefaults hole: with TTL > MaxTTL configured, a default-duration
// acquire (ttl <= 0 resolves to cfg.TTL) used to be granted the full TTL
// while explicit requests were clamped at MaxTTL — the configured
// ceiling was quietly breakable by NOT asking for anything. The config
// now normalizes MaxTTL up to TTL, so the default lease class is always
// grantable and the ceiling binds uniformly.
func TestDefaultTTLNeverExceedsMaxTTL(t *testing.T) {
	nm, err := renaming.NewLevelArray(8)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{
		TTL:           60 * time.Second,
		MaxTTL:        30 * time.Second, // below TTL: the misconfiguration
		SweepInterval: -1,
		Now:           clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	now := clk.Now()
	byDefault, err := m.Acquire("default", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := m.Acquire("explicit", 45*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	over, err := m.Acquire("over", 2*time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}

	// MaxTTL normalizes up to TTL (60s): the default acquire gets 60s...
	if got := byDefault.ExpiresAt.Sub(now); got != 60*time.Second {
		t.Fatalf("default acquire granted %v, want 60s", got)
	}
	// ...explicit requests under the normalized ceiling pass through...
	if got := explicit.ExpiresAt.Sub(now); got != 45*time.Second {
		t.Fatalf("45s request granted %v, want 45s (ceiling is now max(TTL, MaxTTL))", got)
	}
	// ...and oversized requests clamp at the normalized ceiling — never
	// above what the default class gets, never below it either.
	if got := over.ExpiresAt.Sub(now); got != 60*time.Second {
		t.Fatalf("2h request granted %v, want the 60s normalized ceiling", got)
	}

	// Renewals follow the same rule: a default renewal must not outlive
	// the ceiling the explicit path enforces.
	ren, err := m.Renew(byDefault.Name, byDefault.Token, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ren.ExpiresAt.Sub(clk.Now()); got != 60*time.Second {
		t.Fatalf("default renewal granted %v, want 60s", got)
	}
}

// TestMaxTTLAboveTTLUntouched pins that a sane configuration is left
// alone by the normalization.
func TestMaxTTLAboveTTLUntouched(t *testing.T) {
	cfg := Config{TTL: 10 * time.Second, MaxTTL: 25 * time.Second}
	cfg.applyDefaults()
	if cfg.MaxTTL != 25*time.Second {
		t.Fatalf("MaxTTL rewritten to %v, want 25s untouched", cfg.MaxTTL)
	}
	cfg = Config{TTL: 10 * time.Second}
	cfg.applyDefaults()
	if cfg.MaxTTL != 100*time.Second {
		t.Fatalf("defaulted MaxTTL = %v, want 10×TTL", cfg.MaxTTL)
	}
}
