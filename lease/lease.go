// Package lease turns a one-shot name assignment (renaming.Namer) into a
// production-grade identity lease service: every acquired name carries a
// TTL, a fencing token, an owner string and arbitrary metadata. Holders
// keep a name alive by renewing before the TTL elapses; names whose leases
// expire are reclaimed — lazily on access and eagerly by a background
// sweeper — and returned to the namer's pool for re-assignment.
//
// This is the exclusive-assignment semantics of Chlebus and Kowalski,
// "Asynchronous Exclusive Selection": at every instant each name has at
// most one live holder, and a holder that stalls past its TTL loses the
// name without any action on its part. Fencing tokens make the loss safe
// to detect: a stale holder's Renew or Release fails with ErrWrongToken
// because the token was minted for a lease that no longer exists.
//
// Internally the manager is sharded (the lock-striping idiom of Alistarh,
// Kopinsky, Matveev and Shavit's LevelArray paper, ICDCS 2014): the lease
// table is split into nextPow2(GOMAXPROCS) stripes, each with its own
// mutex and expiry min-heap, and names route to stripes by low bits. The
// MaxLive capacity check is a lock-free atomic reservation, and sweeps pop
// per-shard heaps — O(expired) — instead of scanning every live lease. So
// bookkeeping scales with cores and the namer stays the hot path.
//
// Acquisition comes in three forms: Acquire (non-cancellable), AcquireCtx
// (abandons a slow acquisition when the context ends, with the capacity
// reservation and any won TAS slot handed back) and AcquireBatch (k leases
// through one capacity reservation, one batched namer call and one lock
// visit per involved stripe — all-or-nothing).
//
// The package layers on any Namer; pair it with renaming.NewLevelArray to
// get constant expected probes under sustained lease churn.
package lease

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	renaming "repro"
)

// Errors returned by Manager operations.
var (
	// ErrUnknownName is returned for operations on a name with no live lease.
	ErrUnknownName = errors.New("lease: no live lease for name")
	// ErrWrongToken is returned when the caller's fencing token does not
	// match the live lease — the caller is a stale holder.
	ErrWrongToken = errors.New("lease: fencing token mismatch")
	// ErrExpired is returned by Renew when the lease's TTL elapsed before
	// the renewal arrived; the name has been (or is about to be) reclaimed.
	ErrExpired = errors.New("lease: lease expired before renewal")
	// ErrClosed is returned by operations on a closed Manager.
	ErrClosed = errors.New("lease: manager closed")
	// ErrCapacity is returned by Acquire when MaxLive leases are already
	// held. Distinct from namespace exhaustion: the namer still has slots,
	// but granting more would void its probe guarantees. Acquire reclaims
	// expired leases before giving up, so ErrCapacity means the capacity
	// is genuinely full of live holders (or of in-flight acquisitions).
	ErrCapacity = errors.New("lease: live-lease capacity reached")
)

// Lease is a snapshot of one live lease. Copies are handed out; mutating a
// returned Lease (or its Meta map) does not affect the manager's state.
type Lease struct {
	// Name is the integer name held, in [0, Namespace()).
	Name int
	// Token is the fencing token minted at acquisition, unique across the
	// manager's lifetime. Renew and Release require it.
	Token uint64
	// Owner is the caller-supplied identity that acquired the lease.
	Owner string
	// ExpiresAt is the instant the lease lapses unless renewed.
	ExpiresAt time.Time
	// Meta is the caller-supplied metadata attached at acquisition.
	Meta map[string]string
}

func (l Lease) clone() Lease {
	if l.Meta != nil {
		m := make(map[string]string, len(l.Meta))
		for k, v := range l.Meta {
			m[k] = v
		}
		l.Meta = m
	}
	return l
}

// Config tunes a Manager.
type Config struct {
	// TTL is the lease duration granted by Acquire and Renew when the
	// caller does not request one. Defaults to 30 seconds.
	TTL time.Duration
	// MaxTTL caps caller-requested durations. Defaults to 10×TTL.
	MaxTTL time.Duration
	// SweepInterval is the period of the background reclamation sweep.
	// Defaults to TTL/4. Set negative to disable the sweeper entirely
	// (expired leases are then reclaimed only lazily, on access, or by
	// explicit SweepOnce calls — how the tests drive reclamation
	// deterministically).
	SweepInterval time.Duration
	// MaxLive, if positive, caps the number of concurrently live leases.
	// Long-lived namers guarantee their probe bounds only up to a
	// capacity; set MaxLive to that capacity to enforce it (Acquire then
	// fails with ErrCapacity instead of degrading). 0 means uncapped —
	// the namer's namespace is the only limit. This is the INITIAL cap;
	// SetMaxLive changes it at runtime.
	MaxLive int
	// Shards overrides the number of lock stripes the lease table is
	// split into. 0 means nextPow2(GOMAXPROCS); other values are rounded
	// up to a power of two. Mostly a benchmarking knob: Shards: 1
	// reproduces the pre-sharding single-mutex manager.
	Shards int
	// Observer, if non-nil, receives every lease-table transition (see
	// Observer). The persist.Store journal implements it for crash
	// recovery; nil costs one predictable branch per operation.
	Observer Observer
	// Now is the clock; defaults to time.Now. Injectable for tests.
	Now func() time.Time
}

// Observer receives every state transition of the lease table. Callbacks
// are invoked synchronously under the owning stripe's lock, so the event
// order per name exactly matches table order: an acquire is always
// observed before any renewal, release or expiry of the lease it created,
// and with a write-ahead implementation a grant is durable before the
// caller sees it. Implementations must therefore be fast, must tolerate
// concurrent calls (different stripes journal in parallel), and must not
// call back into the Manager. The persist package's Store is the intended
// implementation.
type Observer interface {
	// ObserveAcquire fires after a lease is inserted into the table. The
	// lease and its Meta map must be treated as read-only.
	ObserveAcquire(l Lease)
	// ObserveRenew fires after a successful renewal extends name's lease
	// (held with token) to expiresAt.
	ObserveRenew(name int, token uint64, expiresAt time.Time)
	// ObserveRelease fires after a voluntary release removes a lease —
	// including the drain in Close.
	ObserveRelease(name int, token uint64)
	// ObserveExpire fires after an expired lease is reclaimed (by a sweep
	// or lazily on access), and from Restore for leases that lapsed while
	// the service was down.
	ObserveExpire(name int, token uint64)
}

func (c *Config) applyDefaults() {
	if c.TTL <= 0 {
		c.TTL = 30 * time.Second
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 10 * c.TTL
	}
	if c.MaxTTL < c.TTL {
		// An explicit MaxTTL below the (defaulted) TTL would let
		// default-duration acquires (ttl <= 0 resolves to cfg.TTL) exceed
		// the configured ceiling while explicit requests were clamped
		// under it. Normalize by raising the ceiling to the default: the
		// default lease class is always grantable.
		c.MaxTTL = c.TTL
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = c.TTL / 4
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	c.Shards = nextPow2(c.Shards)
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Metrics is a snapshot of the manager's operation counters.
type Metrics struct {
	Acquired int64 // leases granted
	Renewed  int64 // successful renewals
	Released int64 // explicit releases
	Expired  int64 // leases reclaimed after TTL lapse
	// Rejected counts refused operations: capacity/namespace exhaustion,
	// wrong token, expiry, unknown name, cancellation — and ErrClosed,
	// which every other refusal already counted but the early shutdown
	// returns used to skip, under-reporting rejections during drain. A
	// refused batch call counts once, plus once per item the table itself
	// turned away.
	Rejected int64
	// ReclaimFailed counts names the manager tried to hand back and the
	// namer refused (namer.Release errored). Over a one-shot namer such
	// as MoirAnderson every reclaim fails with ErrOneShot and the slot is
	// lost for good; a nonzero value here is the only trace of that leak.
	ReclaimFailed int64
	// CapacitySweeps counts capacity-pressure sweeps actually executed on
	// the reserve path, and CapacitySweepJoins counts reservations that
	// joined an in-flight sweep instead of running their own — the
	// single-flight coalescing ratio under a rejection storm. Joins
	// rising much faster than sweeps means the service is pinned at
	// MaxLive.
	CapacitySweeps     int64
	CapacitySweepJoins int64
	// Reserved is the raw capacity counter: live leases plus in-flight
	// Acquire reservations that have not yet materialized as leases.
	// Reserved - Live is the instantaneous acquisition in-flight depth
	// (plus any expired-but-unreclaimed leases still holding capacity).
	Reserved int64
	Live     int // unexpired leases currently held
	// MaxLive is the instantaneous live-lease cap (0 = uncapped) and
	// Resizes counts successful SetMaxLive calls. After a shrink below
	// the live population, Live > MaxLive is expected — existing holders
	// ride to expiry while new acquires are refused.
	MaxLive int64
	Resizes int64
}

// Manager grants, renews, expires and reclaims leases over a Namer.
// All methods are safe for concurrent use.
type Manager struct {
	namer renaming.Namer
	cfg   Config

	// shards is the striped lease table; len(shards) is a power of two
	// and name & mask routes a name to its stripe.
	shards []shard
	mask   int

	closed atomic.Bool
	// inflight counts operations that may touch the table or observer;
	// Shutdown drains it (see enterOp) so no record can chase a closed
	// store. Every mutating public op pays one Add pair — consistent
	// with the live/rejected counters already on those paths.
	inflight atomic.Int64

	// Single-flight state for the capacity-pressure sweep in reserve: at
	// most one reserve-path sweepAll runs at a time, concurrent losers
	// join it. capSweepsRun/capSweepJoined instrument the coalescing for
	// the regression test that pins it.
	capSweepMu     sync.Mutex
	capSweepActive *capSweepCall
	capSweepsRun   atomic.Int64
	capSweepJoined atomic.Int64

	// live counts held names plus in-flight Acquire reservations.
	// Acquire reserves capacity here *before* probing the namer, so
	// MaxLive is enforced without any lock — and without the
	// grant-then-recheck race the single-mutex design had, where an
	// Acquire could fail with ErrCapacity while expired leases sat
	// unreclaimed.
	live atomic.Int64
	// maxLive is the runtime live-lease cap (0 = uncapped), seeded from
	// cfg.MaxLive and mutable via SetMaxLive. An atomic, not a field
	// read, so the lock-free reservation in reserve stays lock-free
	// while the cap changes underneath it. resizes counts the changes.
	maxLive atomic.Int64
	resizes atomic.Int64

	token atomic.Uint64

	acquired      atomic.Int64
	renewed       atomic.Int64
	released      atomic.Int64
	expired       atomic.Int64
	rejected      atomic.Int64
	reclaimFailed atomic.Int64

	done chan struct{}
	wg   sync.WaitGroup
}

// New builds a Manager over namer and starts its background sweeper
// (unless cfg.SweepInterval < 0). Close releases the sweeper.
func New(namer renaming.Namer, cfg Config) (*Manager, error) {
	if namer == nil {
		return nil, errors.New("lease: nil namer")
	}
	cfg.applyDefaults()
	m := &Manager{
		namer:  namer,
		cfg:    cfg,
		shards: make([]shard, cfg.Shards),
		mask:   cfg.Shards - 1,
		done:   make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i].leases = make(map[int]Lease)
	}
	m.maxLive.Store(int64(cfg.MaxLive))
	if cfg.SweepInterval > 0 {
		m.wg.Add(1)
		go m.sweepLoop()
	}
	return m, nil
}

func (m *Manager) sweepLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
			m.SweepOnce()
		}
	}
}

// shard returns the stripe name routes to.
func (m *Manager) shard(name int) *shard { return &m.shards[name&m.mask] }

// clampTTL resolves a caller-requested duration against the config.
func (m *Manager) clampTTL(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		return m.cfg.TTL
	}
	if ttl > m.cfg.MaxTTL {
		return m.cfg.MaxTTL
	}
	return ttl
}

// reserve claims k units of MaxLive capacity before the namer is probed.
// Over the cap it reclaims expired leases (the eager sweep the pre-shard
// design ran under its lock) and retries; ErrCapacity is returned only
// after a sweep found nothing to reclaim, so an Acquire can no longer be
// rejected while expired leases sit unreclaimed. The cap itself is an
// atomic (SetMaxLive mutates it online), so the whole path stays
// lock-free; a reservation racing a cap change lands under whichever
// cap it observed, which is indistinguishable from it having run just
// before or after the resize.
//
//renamed:noalloc
func (m *Manager) reserve(k int) error {
	for {
		n := m.live.Add(int64(k))
		if max := m.maxLive.Load(); max <= 0 || n <= max {
			return nil
		}
		m.live.Add(-int64(k))
		if m.reclaimForCapacity() == 0 {
			return ErrCapacity
		}
	}
}

// SetMaxLive changes the live-lease cap online: n > 0 caps concurrently
// live leases at n, n == 0 uncaps. Raising the cap takes effect for the
// next reservation. Lowering it below the current live population does
// NOT revoke anything — existing leases ride to their expiry (the same
// honoured-holders semantics Restore documents for a capacity cut
// across a restart) and new acquires fail with ErrCapacity until
// attrition brings live back under the cap. Negative n is rejected.
func (m *Manager) SetMaxLive(n int) error {
	if n < 0 {
		return fmt.Errorf("lease: SetMaxLive(%d): %w", n, renaming.ErrBadConfig)
	}
	if !m.enterOp() {
		m.rejected.Add(1)
		return ErrClosed
	}
	defer m.exitOp()
	m.maxLive.Store(int64(n))
	m.resizes.Add(1)
	return nil
}

// MaxLive returns the instantaneous live-lease cap (0 = uncapped).
//
//renamed:noalloc
func (m *Manager) MaxLive() int { return int(m.maxLive.Load()) }

// Namer exposes the underlying namer for process-level concerns the
// manager does not mediate — capacity inspection and online resize
// (renaming.ResizableNamer). Data-path namer calls stay behind the
// manager; going around it for acquire/release would corrupt the
// live accounting.
func (m *Manager) Namer() renaming.Namer { return m.namer }

// capSweepCall is one in-flight capacity-pressure sweep; latecomers block
// on done and share reclaimed instead of sweeping again themselves.
type capSweepCall struct {
	done      chan struct{}
	reclaimed int
}

// reclaimForCapacity runs — or joins — a single capacity-pressure sweep
// and reports how many leases it reclaimed. Pre-fix, every reserve that
// lost the MaxLive race ran its own sweepAll, so a rejection storm at
// capacity had each loser serialize on all O(shards) stripe locks over
// and over; single-flighting means one loser pays the sweep and the rest
// wait for its verdict. A joiner's verdict is computed from a clock read
// that may slightly predate its own failure — acceptable, since the
// capacity check is inherently a race against concurrent expiry.
func (m *Manager) reclaimForCapacity() int {
	m.capSweepMu.Lock()
	if c := m.capSweepActive; c != nil {
		m.capSweepMu.Unlock()
		m.capSweepJoined.Add(1)
		<-c.done
		return c.reclaimed
	}
	c := &capSweepCall{done: make(chan struct{})}
	m.capSweepActive = c
	m.capSweepMu.Unlock()

	m.capSweepsRun.Add(1)
	c.reclaimed = m.sweepAll(m.cfg.Now())

	m.capSweepMu.Lock()
	m.capSweepActive = nil
	m.capSweepMu.Unlock()
	close(c.done)
	return c.reclaimed
}

// Acquire grants a lease on a fresh name for owner. ttl <= 0 means the
// configured default; larger requests are capped at MaxTTL. meta is copied.
// When the namer cannot assign a name the error wraps
// renaming.ErrNamespaceExhausted. Acquire cannot be cancelled; use
// AcquireCtx when the caller may abandon a slow acquisition.
func (m *Manager) Acquire(owner string, ttl time.Duration, meta map[string]string) (Lease, error) {
	//lint:ctx Acquire is the documented uncancellable convenience form of AcquireCtx
	return m.AcquireCtx(context.Background(), owner, ttl, meta)
}

// AcquireCtx is Acquire with cancellation: if ctx ends while the namer is
// still probing, the acquisition aborts with an error matching
// renaming.ErrCancelled (wrapping ctx.Err()), the capacity reservation is
// returned, and no name or TAS slot stays held.
func (m *Manager) AcquireCtx(ctx context.Context, owner string, ttl time.Duration, meta map[string]string) (Lease, error) {
	if !m.enterOp() {
		m.rejected.Add(1)
		return Lease{}, ErrClosed
	}
	defer m.exitOp()
	if err := m.reserve(1); err != nil {
		m.rejected.Add(1)
		return Lease{}, err
	}

	// Acquire is lock-free on the TAS array; the capacity slot is already
	// reserved, so acquisitions scale with the namer, not the bookkeeping.
	name, err := m.namer.Acquire(ctx)
	if err != nil {
		m.live.Add(-1)
		m.rejected.Add(1)
		return Lease{}, fmt.Errorf("lease: acquire: %w", err)
	}
	l := Lease{
		Name:      name,
		Token:     m.token.Add(1),
		Owner:     owner,
		ExpiresAt: m.cfg.Now().Add(m.clampTTL(ttl)),
		Meta:      meta,
	}.clone()

	sh := m.shard(name)
	sh.mu.Lock()
	if m.closed.Load() {
		// Raced with Close: hand the name straight back.
		sh.mu.Unlock()
		m.live.Add(-1)
		m.releaseName(name)
		m.rejected.Add(1)
		return Lease{}, ErrClosed
	}
	sh.leases[name] = l
	sh.expiries.push(heapEntry{at: l.ExpiresAt, name: name, token: l.Token})
	if m.cfg.Observer != nil {
		m.cfg.Observer.ObserveAcquire(l)
	}
	sh.mu.Unlock()
	m.acquired.Add(1)
	return l.clone(), nil
}

// AcquireBatch grants k leases in one call: one capacity reservation of k
// units, one batched namer acquisition (renaming.AcquireN, which amortizes
// its PRNG-stream setup across the batch), and one lock-stripe visit per
// involved stripe instead of one per lease. Either all k leases are
// granted or none: on exhaustion, cancellation or a race with Close, every
// name already taken is handed back and the reservation undone. Each lease
// carries its own fencing token; ttl and meta apply to all of them.
func (m *Manager) AcquireBatch(ctx context.Context, owner string, k int, ttl time.Duration, meta map[string]string) ([]Lease, error) {
	if k < 1 {
		return nil, fmt.Errorf("lease: AcquireBatch(%d): %w", k, renaming.ErrBadConfig)
	}
	if !m.enterOp() {
		m.rejected.Add(1)
		return nil, ErrClosed
	}
	defer m.exitOp()
	// Reject impossible batch sizes before touching any shared state: a k
	// beyond the namespace can never complete, and a k beyond MaxLive must
	// not transiently inflate the live counter — reserve(k) adds k before
	// checking the cap, so without this guard one doomed oversized request
	// would make concurrent legitimate acquires spuriously hit ErrCapacity
	// (and k is client-controlled in cmd/renamed, so it must also never
	// size an allocation).
	if k > m.namer.Namespace() {
		m.rejected.Add(1)
		return nil, fmt.Errorf("lease: acquire batch of %d exceeds namespace %d: %w",
			k, m.namer.Namespace(), renaming.ErrNamespaceExhausted)
	}
	if max := m.maxLive.Load(); max > 0 && int64(k) > max {
		m.rejected.Add(1)
		return nil, ErrCapacity
	}
	if err := m.reserve(k); err != nil {
		m.rejected.Add(1)
		return nil, err
	}
	names, err := m.namer.AcquireN(ctx, k)
	if err != nil {
		m.live.Add(-int64(k))
		m.rejected.Add(1)
		return nil, fmt.Errorf("lease: acquire batch: %w", err)
	}

	expiresAt := m.cfg.Now().Add(m.clampTTL(ttl))
	leases := make([]Lease, k)
	for i, name := range names {
		leases[i] = Lease{
			Name:      name,
			Token:     m.token.Add(1),
			Owner:     owner,
			ExpiresAt: expiresAt,
			Meta:      meta,
		}.clone()
	}

	// Bucket the batch by stripe so each involved stripe is locked exactly
	// once, however many of the k names it received.
	buckets := make(map[int][]Lease, len(m.shards))
	order := make([]int, 0, len(m.shards))
	for _, l := range leases {
		idx := l.Name & m.mask
		if _, ok := buckets[idx]; !ok {
			order = append(order, idx)
		}
		buckets[idx] = append(buckets[idx], l)
	}
	for pos, idx := range order {
		sh := &m.shards[idx]
		sh.mu.Lock()
		if m.closed.Load() {
			// Raced with Close or Shutdown. Nothing may stay half-granted:
			// the caller is told ErrClosed, so every lease this batch
			// already inserted into earlier stripes must come back OUT of
			// the table — under Shutdown there is no drain to return it,
			// and leaving it would persist a durable ghost lease whose
			// owner thinks the acquisition failed. Removal is token-
			// guarded: a lease Close's concurrent drain already removed
			// (and whose name it already handed back) is skipped.
			sh.mu.Unlock()
			var removed []int
			for _, ridx := range order[:pos] {
				ish := &m.shards[ridx]
				ish.mu.Lock()
				for _, l := range buckets[ridx] {
					cur, ok := ish.leases[l.Name]
					if !ok || cur.Token != l.Token {
						continue // Close's drain got here first
					}
					delete(ish.leases, l.Name)
					if m.cfg.Observer != nil {
						m.cfg.Observer.ObserveRelease(l.Name, l.Token)
					}
					removed = append(removed, l.Name)
				}
				ish.mu.Unlock()
			}
			// Hand back outside the stripe locks — exactly the names WE
			// removed (the token check above keeps us off anything Close's
			// drain already returned).
			m.releaseNames(removed)
			// Everything not yet inserted is still ours outright.
			remaining := 0
			for _, ridx := range order[pos:] {
				for _, l := range buckets[ridx] {
					m.releaseName(l.Name)
					remaining++
				}
			}
			m.live.Add(-int64(len(removed) + remaining))
			m.rejected.Add(1)
			return nil, ErrClosed
		}
		for _, l := range buckets[idx] {
			sh.leases[l.Name] = l
			sh.expiries.push(heapEntry{at: l.ExpiresAt, name: l.Name, token: l.Token})
			if m.cfg.Observer != nil {
				m.cfg.Observer.ObserveAcquire(l)
			}
		}
		sh.mu.Unlock()
	}
	m.acquired.Add(int64(k))
	out := make([]Lease, k)
	for i, l := range leases {
		out[i] = l.clone()
	}
	return out, nil
}

// Renew extends the lease identified by (name, token) by ttl (<= 0 means
// the configured default). A renewal that arrives after expiry fails with
// ErrExpired and reclaims the name immediately. Holders heartbeating many
// leases should prefer RenewBatch, which pays one lock visit per involved
// stripe instead of one per lease.
func (m *Manager) Renew(name int, token uint64, ttl time.Duration) (Lease, error) {
	if !m.enterOp() {
		m.rejected.Add(1)
		return Lease{}, ErrClosed
	}
	defer m.exitOp()
	sh := m.shard(name)
	sh.mu.Lock()
	// Re-check under the shard lock: a renewal racing Close must not
	// succeed after Close has started, or the caller would hold a
	// "renewed" lease on a name the drain is about to hand back.
	if m.closed.Load() {
		sh.mu.Unlock()
		m.rejected.Add(1)
		return Lease{}, ErrClosed
	}
	l, expired, err := m.renewLocked(sh, name, token, ttl, m.cfg.Now())
	if err == nil {
		sh.maybeCompact()
	}
	sh.mu.Unlock()
	if expired {
		// The lapsed lease was dropped under the lock; the namer hand-back
		// happens out here, where a slow Release cannot stall the stripe.
		m.releaseName(name)
	}
	if err != nil {
		return Lease{}, err
	}
	m.renewed.Add(1)
	return l.clone(), nil
}

// renewLocked applies one renewal against sh — the shared core of Renew
// and RenewBatch. Refusals settle the rejected counter here; successes
// leave the renewed counter (and compaction) to the caller, which batches
// them. When the lease lapsed, it is dropped from the table and expired
// reports true: the caller MUST hand name back to the namer
// (m.releaseName) after unlocking the stripe. Callers hold sh.mu and name
// routes to sh.
func (m *Manager) renewLocked(sh *shard, name int, token uint64, ttl time.Duration, now time.Time) (l Lease, expired bool, err error) {
	l, ok := sh.leases[name]
	if !ok {
		m.rejected.Add(1)
		return Lease{}, false, ErrUnknownName
	}
	if l.Token != token {
		m.rejected.Add(1)
		return Lease{}, false, ErrWrongToken
	}
	if now.After(l.ExpiresAt) {
		m.expireLocked(sh, name, l.Token)
		m.rejected.Add(1)
		return Lease{}, true, ErrExpired
	}
	l.ExpiresAt = now.Add(m.clampTTL(ttl))
	sh.leases[name] = l
	sh.expiries.push(heapEntry{at: l.ExpiresAt, name: name, token: l.Token})
	if m.cfg.Observer != nil {
		m.cfg.Observer.ObserveRenew(name, token, l.ExpiresAt)
	}
	return l, false, nil
}

// Release ends the lease identified by (name, token) and returns the name
// to the namer's pool. A release that arrives after expiry fails with
// ErrExpired — the holder already lost the name — and reclaims it
// immediately, so the outcome does not depend on sweeper timing.
func (m *Manager) Release(name int, token uint64) error {
	if !m.enterOp() {
		m.rejected.Add(1)
		return ErrClosed
	}
	defer m.exitOp()
	sh := m.shard(name)
	sh.mu.Lock()
	if m.closed.Load() {
		sh.mu.Unlock()
		m.rejected.Add(1)
		return ErrClosed
	}
	handback, err := m.releaseLocked(sh, name, token, m.cfg.Now())
	sh.mu.Unlock()
	if !handback {
		return err
	}
	rerr := m.releaseName(name)
	if err != nil {
		// Expired-lease reclaim: the holder already lost the name, so the
		// namer's verdict on the hand-back is only counted (ReclaimFailed),
		// not surfaced.
		return err
	}
	return rerr
}

// releaseLocked applies one release against sh — the shared core of
// Release and ReleaseBatch. Refusals settle the rejected counter. The
// namer hand-back itself happens OUTSIDE the stripe lock: when handback
// reports true the caller must invoke m.releaseName(name) after
// unlocking — with err == nil that hand-back is the successful release,
// whose namer error (e.g. ErrOneShot) still propagates to the caller
// after counting in ReclaimFailed; with err == ErrExpired it is the
// reclaim of a lapsed lease and its error is only counted. Callers hold
// sh.mu and name routes to sh.
func (m *Manager) releaseLocked(sh *shard, name int, token uint64, now time.Time) (handback bool, err error) {
	l, ok := sh.leases[name]
	if !ok {
		m.rejected.Add(1)
		return false, ErrUnknownName
	}
	if l.Token != token {
		m.rejected.Add(1)
		return false, ErrWrongToken
	}
	if now.After(l.ExpiresAt) {
		m.expireLocked(sh, name, l.Token)
		m.rejected.Add(1)
		return true, ErrExpired
	}
	delete(sh.leases, name)
	if m.cfg.Observer != nil {
		m.cfg.Observer.ObserveRelease(name, token)
	}
	sh.maybeCompact()
	m.live.Add(-1)
	m.released.Add(1)
	return true, nil
}

// Get returns the live lease for name, reclaiming it first if it already
// expired (in which case ok is false).
func (m *Manager) Get(name int) (l Lease, ok bool) {
	// Get still reads on a closed manager, but only an open, registered
	// Get may reclaim: a post-Shutdown expire record would chase a
	// closed store, and the lapsed lease is the next boot's problem.
	mayReclaim := m.enterOp()
	if mayReclaim {
		defer m.exitOp()
	}
	sh := m.shard(name)
	sh.mu.Lock()
	l, ok = sh.leases[name]
	if !ok {
		sh.mu.Unlock()
		return Lease{}, false
	}
	if m.cfg.Now().After(l.ExpiresAt) {
		if !mayReclaim {
			sh.mu.Unlock()
			return Lease{}, false
		}
		m.expireLocked(sh, name, l.Token)
		sh.mu.Unlock()
		m.releaseName(name)
		return Lease{}, false
	}
	l = l.clone()
	sh.mu.Unlock()
	return l, true
}

// Leases snapshots all live (unexpired) leases, ordered by name. The
// snapshot is per-shard consistent, not global: shards are locked one at
// a time, so a holder releasing one name and acquiring another while the
// snapshot runs can appear under both or neither.
func (m *Manager) Leases() []Lease {
	now := m.cfg.Now()
	var out []Lease
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, l := range sh.leases {
			if now.After(l.ExpiresAt) {
				continue
			}
			out = append(out, l.clone())
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SweepOnce reclaims every expired lease now and reports how many it
// reclaimed. The background sweeper calls this on every tick; tests call
// it directly for deterministic reclamation. One sweep is O(expired) per
// shard — it pops each shard's expiry heap until the head is unexpired —
// rather than a scan of every live lease.
func (m *Manager) SweepOnce() int {
	if !m.enterOp() {
		return 0
	}
	defer m.exitOp()
	return m.sweepAll(m.cfg.Now())
}

// sweepAll sweeps every shard, locking each in turn (never two at once).
// Expired names are collected under each stripe's lock but handed back to
// the namer only after that stripe is unlocked: one sweep over O(expired)
// leases must not hold a shard hostage across O(expired) namer.Release
// calls, which can be arbitrarily slow (and, with a journaling observer
// gone synchronous, disk-speed).
func (m *Manager) sweepAll(now time.Time) int {
	reclaimed := 0
	var expired []int
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		expired = m.sweepLocked(sh, now, expired[:0])
		sh.mu.Unlock()
		m.releaseNames(expired)
		reclaimed += len(expired)
	}
	return reclaimed
}

// Metrics returns a snapshot of the operation counters. Live excludes
// leases that have expired but not yet been reclaimed, matching Leases(),
// so dashboards don't show phantom holders when the sweeper is off. Like
// Leases, the count is per-shard consistent only: under concurrent churn
// it can transiently read above MaxLive (a holder's old and new names
// both counted), so don't alert on Live <= capacity as a hard invariant.
// Computing Live is an O(live/shards) scan per stripe — one stripe locked
// at a time, never the whole table — so poll /debug/vars at monitoring
// cadence, not in a tight loop.
func (m *Manager) Metrics() Metrics {
	now := m.cfg.Now()
	live := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, l := range sh.leases {
			if !now.After(l.ExpiresAt) {
				live++
			}
		}
		sh.mu.Unlock()
	}
	return Metrics{
		Acquired:           m.acquired.Load(),
		Renewed:            m.renewed.Load(),
		Released:           m.released.Load(),
		Expired:            m.expired.Load(),
		Rejected:           m.rejected.Load(),
		ReclaimFailed:      m.reclaimFailed.Load(),
		CapacitySweeps:     m.capSweepsRun.Load(),
		CapacitySweepJoins: m.capSweepJoined.Load(),
		Reserved:           m.live.Load(),
		Live:               live,
		MaxLive:            m.maxLive.Load(),
		Resizes:            m.resizes.Load(),
	}
}

// Namespace exposes the underlying namer's namespace bound.
func (m *Manager) Namespace() int { return m.namer.Namespace() }

// Close stops the sweeper, releases every live lease back to the namer and
// rejects all further operations. Close is idempotent. Releases the namer
// refuses are counted in Metrics.ReclaimFailed.
func (m *Manager) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	var names []int
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		names = names[:0]
		for name, l := range sh.leases {
			delete(sh.leases, name)
			m.live.Add(-1)
			if m.cfg.Observer != nil {
				m.cfg.Observer.ObserveRelease(name, l.Token)
			}
			names = append(names, name)
		}
		sh.expiries = nil
		sh.mu.Unlock()
		// Namer hand-backs run outside the stripe lock, like every other
		// reclaim path.
		m.releaseNames(names)
	}
	close(m.done)
	m.wg.Wait()
	return nil
}

// Shutdown quiesces the manager for a durable restart: it stops the
// sweeper and rejects all further operations like Close, but does NOT
// release live leases back to the namer and records no releases with the
// observer — on disk the lease table keeps describing the held names, and
// the next process rebuilds them via Restore. Without a persistence layer
// Shutdown just leaks the names until process exit; use Close for a
// terminal shutdown. Shutdown and Close are mutually idempotent
// (whichever wins the closed transition defines the semantics).
//
// With an Observer attached, Shutdown is additionally a quiescence
// barrier: it flips closed and then drains the in-flight operation
// counter, so a grant (or a batch walk, including its unwind) that
// registered before the flip finishes completely — insert, journal
// records and all — before Shutdown returns, and everything arriving
// after the flip backs out at enterOp. A stripe-lock sweep alone would
// not give this: a multi-stripe batch BETWEEN stripes holds no lock yet
// still owes the journal its unwind records. This barrier is what makes
// "Shutdown, then store.Close" lose nothing. (Observer-less managers
// skip the registration — there is nothing downstream to lose a record
// to — so there a straggler may still brush the in-memory table after
// Shutdown returns.)
func (m *Manager) Shutdown() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	for i := 0; m.inflight.Load() != 0; i++ {
		if i < 1000 {
			runtime.Gosched()
		} else {
			// An in-flight acquire can legitimately sit in a long namer
			// probe sequence; stop burning the core while it finishes.
			time.Sleep(100 * time.Microsecond)
		}
	}
	close(m.done)
	m.wg.Wait()
	return nil
}

// enterOp registers an operation against Shutdown's quiescence barrier
// and reports whether the manager is still open. The counter increments
// BEFORE the closed check, so the flip-then-drain in Shutdown cannot
// miss anyone: an operation either sees closed here and backs out, or
// its registration is visible to the drain and Shutdown waits for it.
//
// Without an observer there is nothing downstream a straggler could
// lose a record to — the barrier exists so "Shutdown, then store.Close"
// is loss-free — so the journaling-disabled hot path skips the counter
// entirely and pays only the closed load it always paid.
func (m *Manager) enterOp() bool {
	if m.cfg.Observer == nil {
		return !m.closed.Load()
	}
	m.inflight.Add(1)
	if m.closed.Load() {
		m.inflight.Add(-1)
		return false
	}
	return true
}

func (m *Manager) exitOp() {
	if m.cfg.Observer == nil {
		return
	}
	m.inflight.Add(-1)
}

// Adopter is the namer surface Restore needs: re-seizing the exact names
// the restored leases hold, so a fresh Acquire cannot be granted a name
// that already has a live holder. Every namer constructed by the renaming
// package implements it.
type Adopter interface {
	// Adopt marks name as held, as if acquired.
	Adopt(name int) error
}

// RestoreState is recovered durable state handed to Restore — typically
// persist.Store.State() after snapshot load and journal replay.
type RestoreState struct {
	// Leases are the leases live as of the crash or shutdown.
	Leases []Lease
	// Token is the fencing-token watermark: the highest token durably
	// recorded before the restart. The manager's counter resumes strictly
	// above it (and above every restored lease's token), so tokens minted
	// after restart never collide with pre-crash tokens — a stale
	// pre-crash holder can never outrank a post-crash one.
	Token uint64
}

// Restore rebuilds the lease table from recovered state: every still-
// unexpired lease is re-inserted into its stripe with its original
// fencing token, its deadline is pushed on the stripe's expiry heap, the
// live counter is re-established, its name is re-seized in the namer via
// Adopt, and the fencing-token counter is advanced past the recovered
// watermark. Leases whose TTL lapsed while the service was down are not
// restored; they count as expired (Metrics.Expired, ObserveExpire) and
// their names stay free in the namer.
//
// Restore must run on a fresh manager — after New, before any grant; a
// manager that already minted tokens or holds leases rejects it. The
// restored population may exceed MaxLive (e.g. after a capacity cut
// across the restart): existing holders are honoured, and new acquires
// stay rejected until attrition brings the count back under the cap. An
// Adopt failure aborts the restore mid-way with the manager in a partial
// state; treat that as fatal and discard the manager.
func (m *Manager) Restore(st RestoreState) (restored, expired int, err error) {
	if m.closed.Load() {
		return 0, 0, ErrClosed
	}
	if m.token.Load() != 0 || m.live.Load() != 0 {
		return 0, 0, errors.New("lease: Restore on a manager that already granted leases")
	}
	adopter, ok := m.namer.(Adopter)
	if !ok && len(st.Leases) > 0 {
		return 0, 0, fmt.Errorf("lease: namer %T cannot adopt restored names", m.namer)
	}
	now := m.cfg.Now()
	watermark := st.Token
	for _, l := range st.Leases {
		if l.Token > watermark {
			watermark = l.Token
		}
		if now.After(l.ExpiresAt) {
			// Lapsed while the service was down: not restored, never
			// adopted (the name stays free in the namer), and the observer
			// hears the expiry so the durable state drops it too.
			m.expired.Add(1)
			if m.cfg.Observer != nil {
				m.cfg.Observer.ObserveExpire(l.Name, l.Token)
			}
			expired++
			continue
		}
		if aerr := adopter.Adopt(l.Name); aerr != nil {
			return restored, expired, fmt.Errorf("lease: restore name %d: %w", l.Name, aerr)
		}
		l = l.clone()
		sh := m.shard(l.Name)
		sh.mu.Lock()
		sh.leases[l.Name] = l
		sh.expiries.push(heapEntry{at: l.ExpiresAt, name: l.Name, token: l.Token})
		sh.mu.Unlock()
		m.live.Add(1)
		restored++
	}
	// Monotonic fencing across restart: resume the counter strictly above
	// everything ever durably issued.
	if watermark > m.token.Load() {
		m.token.Store(watermark)
	}
	return restored, expired, nil
}
