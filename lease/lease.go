// Package lease turns a one-shot name assignment (renaming.Namer) into a
// production-grade identity lease service: every acquired name carries a
// TTL, a fencing token, an owner string and arbitrary metadata. Holders
// keep a name alive by renewing before the TTL elapses; names whose leases
// expire are reclaimed — lazily on access and eagerly by a background
// sweeper — and returned to the namer's pool for re-assignment.
//
// This is the exclusive-assignment semantics of Chlebus and Kowalski,
// "Asynchronous Exclusive Selection": at every instant each name has at
// most one live holder, and a holder that stalls past its TTL loses the
// name without any action on its part. Fencing tokens make the loss safe
// to detect: a stale holder's Renew or Release fails with ErrWrongToken
// because the token was minted for a lease that no longer exists.
//
// The package layers on any Namer; pair it with renaming.NewLevelArray to
// get constant expected probes under sustained lease churn.
package lease

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	renaming "repro"
)

// Errors returned by Manager operations.
var (
	// ErrUnknownName is returned for operations on a name with no live lease.
	ErrUnknownName = errors.New("lease: no live lease for name")
	// ErrWrongToken is returned when the caller's fencing token does not
	// match the live lease — the caller is a stale holder.
	ErrWrongToken = errors.New("lease: fencing token mismatch")
	// ErrExpired is returned by Renew when the lease's TTL elapsed before
	// the renewal arrived; the name has been (or is about to be) reclaimed.
	ErrExpired = errors.New("lease: lease expired before renewal")
	// ErrClosed is returned by operations on a closed Manager.
	ErrClosed = errors.New("lease: manager closed")
	// ErrCapacity is returned by Acquire when MaxLive leases are already
	// held. Distinct from namespace exhaustion: the namer still has slots,
	// but granting more would void its probe guarantees.
	ErrCapacity = errors.New("lease: live-lease capacity reached")
)

// Lease is a snapshot of one live lease. Copies are handed out; mutating a
// returned Lease (or its Meta map) does not affect the manager's state.
type Lease struct {
	// Name is the integer name held, in [0, Namespace()).
	Name int
	// Token is the fencing token minted at acquisition, unique across the
	// manager's lifetime. Renew and Release require it.
	Token uint64
	// Owner is the caller-supplied identity that acquired the lease.
	Owner string
	// ExpiresAt is the instant the lease lapses unless renewed.
	ExpiresAt time.Time
	// Meta is the caller-supplied metadata attached at acquisition.
	Meta map[string]string
}

func (l Lease) clone() Lease {
	if l.Meta != nil {
		m := make(map[string]string, len(l.Meta))
		for k, v := range l.Meta {
			m[k] = v
		}
		l.Meta = m
	}
	return l
}

// Config tunes a Manager.
type Config struct {
	// TTL is the lease duration granted by Acquire and Renew when the
	// caller does not request one. Defaults to 30 seconds.
	TTL time.Duration
	// MaxTTL caps caller-requested durations. Defaults to 10×TTL.
	MaxTTL time.Duration
	// SweepInterval is the period of the background reclamation sweep.
	// Defaults to TTL/4. Set negative to disable the sweeper entirely
	// (expired leases are then reclaimed only lazily, on access, or by
	// explicit SweepOnce calls — how the tests drive reclamation
	// deterministically).
	SweepInterval time.Duration
	// MaxLive, if positive, caps the number of concurrently live leases.
	// Long-lived namers guarantee their probe bounds only up to a
	// capacity; set MaxLive to that capacity to enforce it (Acquire then
	// fails with ErrCapacity instead of degrading). 0 means uncapped —
	// the namer's namespace is the only limit.
	MaxLive int
	// Now is the clock; defaults to time.Now. Injectable for tests.
	Now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.TTL <= 0 {
		c.TTL = 30 * time.Second
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 10 * c.TTL
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = c.TTL / 4
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Metrics is a snapshot of the manager's operation counters.
type Metrics struct {
	Acquired int64 // leases granted
	Renewed  int64 // successful renewals
	Released int64 // explicit releases
	Expired  int64 // leases reclaimed after TTL lapse
	Rejected int64 // operations refused (exhausted, wrong token, expired, unknown)
	Live     int   // unexpired leases currently held
}

// Manager grants, renews, expires and reclaims leases over a Namer.
// All methods are safe for concurrent use.
type Manager struct {
	namer renaming.Namer
	cfg   Config

	mu     sync.Mutex
	leases map[int]Lease
	closed bool

	token atomic.Uint64

	acquired atomic.Int64
	renewed  atomic.Int64
	released atomic.Int64
	expired  atomic.Int64
	rejected atomic.Int64

	done chan struct{}
	wg   sync.WaitGroup
}

// New builds a Manager over namer and starts its background sweeper
// (unless cfg.SweepInterval < 0). Close releases the sweeper.
func New(namer renaming.Namer, cfg Config) (*Manager, error) {
	if namer == nil {
		return nil, errors.New("lease: nil namer")
	}
	cfg.applyDefaults()
	m := &Manager{
		namer:  namer,
		cfg:    cfg,
		leases: make(map[int]Lease),
		done:   make(chan struct{}),
	}
	if cfg.SweepInterval > 0 {
		m.wg.Add(1)
		go m.sweepLoop()
	}
	return m, nil
}

func (m *Manager) sweepLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
			m.SweepOnce()
		}
	}
}

// clampTTL resolves a caller-requested duration against the config.
func (m *Manager) clampTTL(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		return m.cfg.TTL
	}
	if ttl > m.cfg.MaxTTL {
		return m.cfg.MaxTTL
	}
	return ttl
}

// Acquire grants a lease on a fresh name for owner. ttl <= 0 means the
// configured default; larger requests are capped at MaxTTL. meta is copied.
// When the namer cannot assign a name the error wraps
// renaming.ErrNamespaceExhausted.
func (m *Manager) Acquire(owner string, ttl time.Duration, meta map[string]string) (Lease, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Lease{}, ErrClosed
	}
	if m.cfg.MaxLive > 0 && len(m.leases) >= m.cfg.MaxLive {
		// Under capacity pressure, reclaim expired leases eagerly rather
		// than waiting for the sweeper's next tick.
		m.sweepLocked(m.cfg.Now())
		if len(m.leases) >= m.cfg.MaxLive {
			m.mu.Unlock()
			m.rejected.Add(1)
			return Lease{}, ErrCapacity
		}
	}
	m.mu.Unlock()

	// GetName is lock-free on the TAS array; keep it outside the manager
	// lock so acquisitions scale with the namer, not the bookkeeping.
	name, err := m.namer.GetName()
	if err != nil {
		m.rejected.Add(1)
		return Lease{}, fmt.Errorf("lease: acquire: %w", err)
	}
	l := Lease{
		Name:      name,
		Token:     m.token.Add(1),
		Owner:     owner,
		ExpiresAt: m.cfg.Now().Add(m.clampTTL(ttl)),
		Meta:      meta,
	}.clone()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		// Raced with Close: hand the name straight back.
		m.namer.Release(name)
		return Lease{}, ErrClosed
	}
	if m.cfg.MaxLive > 0 && len(m.leases) >= m.cfg.MaxLive {
		// Lost the capacity race to a concurrent Acquire between the
		// check and the grant: roll the name back.
		m.namer.Release(name)
		m.rejected.Add(1)
		return Lease{}, ErrCapacity
	}
	m.leases[name] = l
	m.acquired.Add(1)
	return l.clone(), nil
}

// Renew extends the lease identified by (name, token) by ttl (<= 0 means
// the configured default). A renewal that arrives after expiry fails with
// ErrExpired and reclaims the name immediately.
func (m *Manager) Renew(name int, token uint64, ttl time.Duration) (Lease, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Lease{}, ErrClosed
	}
	l, ok := m.leases[name]
	if !ok {
		m.rejected.Add(1)
		return Lease{}, ErrUnknownName
	}
	if l.Token != token {
		m.rejected.Add(1)
		return Lease{}, ErrWrongToken
	}
	now := m.cfg.Now()
	if now.After(l.ExpiresAt) {
		m.reclaimLocked(name)
		m.rejected.Add(1)
		return Lease{}, ErrExpired
	}
	l.ExpiresAt = now.Add(m.clampTTL(ttl))
	m.leases[name] = l
	m.renewed.Add(1)
	return l.clone(), nil
}

// Release ends the lease identified by (name, token) and returns the name
// to the namer's pool. A release that arrives after expiry fails with
// ErrExpired — the holder already lost the name — and reclaims it
// immediately, so the outcome does not depend on sweeper timing.
func (m *Manager) Release(name int, token uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	l, ok := m.leases[name]
	if !ok {
		m.rejected.Add(1)
		return ErrUnknownName
	}
	if l.Token != token {
		m.rejected.Add(1)
		return ErrWrongToken
	}
	if m.cfg.Now().After(l.ExpiresAt) {
		m.reclaimLocked(name)
		m.rejected.Add(1)
		return ErrExpired
	}
	delete(m.leases, name)
	m.released.Add(1)
	return m.namer.Release(name)
}

// Get returns the live lease for name, reclaiming it first if it already
// expired (in which case ok is false).
func (m *Manager) Get(name int) (l Lease, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok = m.leases[name]
	if !ok {
		return Lease{}, false
	}
	if m.cfg.Now().After(l.ExpiresAt) {
		m.reclaimLocked(name)
		return Lease{}, false
	}
	return l.clone(), true
}

// Leases snapshots all live (unexpired) leases, ordered by name.
func (m *Manager) Leases() []Lease {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Lease, 0, len(m.leases))
	for _, l := range m.leases {
		if now.After(l.ExpiresAt) {
			continue
		}
		out = append(out, l.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SweepOnce reclaims every expired lease now and reports how many it
// reclaimed. The background sweeper calls this on every tick; tests call
// it directly for deterministic reclamation.
func (m *Manager) SweepOnce() int {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked(now)
}

// sweepLocked reclaims expired leases. Callers hold m.mu.
func (m *Manager) sweepLocked(now time.Time) int {
	reclaimed := 0
	for name, l := range m.leases {
		if now.After(l.ExpiresAt) {
			m.reclaimLocked(name)
			reclaimed++
		}
	}
	return reclaimed
}

// reclaimLocked drops name's lease and returns the name to the pool.
// Callers hold m.mu.
func (m *Manager) reclaimLocked(name int) {
	delete(m.leases, name)
	m.expired.Add(1)
	m.namer.Release(name)
}

// Metrics returns a snapshot of the operation counters. Live excludes
// leases that have expired but not yet been reclaimed, matching Leases(),
// so dashboards don't show phantom holders when the sweeper is off.
func (m *Manager) Metrics() Metrics {
	now := m.cfg.Now()
	m.mu.Lock()
	live := 0
	for _, l := range m.leases {
		if !now.After(l.ExpiresAt) {
			live++
		}
	}
	m.mu.Unlock()
	return Metrics{
		Acquired: m.acquired.Load(),
		Renewed:  m.renewed.Load(),
		Released: m.released.Load(),
		Expired:  m.expired.Load(),
		Rejected: m.rejected.Load(),
		Live:     live,
	}
}

// Namespace exposes the underlying namer's namespace bound.
func (m *Manager) Namespace() int { return m.namer.Namespace() }

// Close stops the sweeper, releases every live lease back to the namer and
// rejects all further operations. Close is idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for name := range m.leases {
		delete(m.leases, name)
		m.namer.Release(name)
	}
	m.mu.Unlock()
	close(m.done)
	m.wg.Wait()
	return nil
}
