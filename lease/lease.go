// Package lease turns a one-shot name assignment (renaming.Namer) into a
// production-grade identity lease service: every acquired name carries a
// TTL, a fencing token, an owner string and arbitrary metadata. Holders
// keep a name alive by renewing before the TTL elapses; names whose leases
// expire are reclaimed — lazily on access and eagerly by a background
// sweeper — and returned to the namer's pool for re-assignment.
//
// This is the exclusive-assignment semantics of Chlebus and Kowalski,
// "Asynchronous Exclusive Selection": at every instant each name has at
// most one live holder, and a holder that stalls past its TTL loses the
// name without any action on its part. Fencing tokens make the loss safe
// to detect: a stale holder's Renew or Release fails with ErrWrongToken
// because the token was minted for a lease that no longer exists.
//
// Internally the manager is sharded (the lock-striping idiom of Alistarh,
// Kopinsky, Matveev and Shavit's LevelArray paper, ICDCS 2014): the lease
// table is split into nextPow2(GOMAXPROCS) stripes, each with its own
// mutex and expiry min-heap, and names route to stripes by low bits. The
// MaxLive capacity check is a lock-free atomic reservation, and sweeps pop
// per-shard heaps — O(expired) — instead of scanning every live lease. So
// bookkeeping scales with cores and the namer stays the hot path.
//
// Acquisition comes in three forms: Acquire (non-cancellable), AcquireCtx
// (abandons a slow acquisition when the context ends, with the capacity
// reservation and any won TAS slot handed back) and AcquireBatch (k leases
// through one capacity reservation, one batched namer call and one lock
// visit per involved stripe — all-or-nothing).
//
// The package layers on any Namer; pair it with renaming.NewLevelArray to
// get constant expected probes under sustained lease churn.
package lease

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	renaming "repro"
)

// Errors returned by Manager operations.
var (
	// ErrUnknownName is returned for operations on a name with no live lease.
	ErrUnknownName = errors.New("lease: no live lease for name")
	// ErrWrongToken is returned when the caller's fencing token does not
	// match the live lease — the caller is a stale holder.
	ErrWrongToken = errors.New("lease: fencing token mismatch")
	// ErrExpired is returned by Renew when the lease's TTL elapsed before
	// the renewal arrived; the name has been (or is about to be) reclaimed.
	ErrExpired = errors.New("lease: lease expired before renewal")
	// ErrClosed is returned by operations on a closed Manager.
	ErrClosed = errors.New("lease: manager closed")
	// ErrCapacity is returned by Acquire when MaxLive leases are already
	// held. Distinct from namespace exhaustion: the namer still has slots,
	// but granting more would void its probe guarantees. Acquire reclaims
	// expired leases before giving up, so ErrCapacity means the capacity
	// is genuinely full of live holders (or of in-flight acquisitions).
	ErrCapacity = errors.New("lease: live-lease capacity reached")
)

// Lease is a snapshot of one live lease. Copies are handed out; mutating a
// returned Lease (or its Meta map) does not affect the manager's state.
type Lease struct {
	// Name is the integer name held, in [0, Namespace()).
	Name int
	// Token is the fencing token minted at acquisition, unique across the
	// manager's lifetime. Renew and Release require it.
	Token uint64
	// Owner is the caller-supplied identity that acquired the lease.
	Owner string
	// ExpiresAt is the instant the lease lapses unless renewed.
	ExpiresAt time.Time
	// Meta is the caller-supplied metadata attached at acquisition.
	Meta map[string]string
}

func (l Lease) clone() Lease {
	if l.Meta != nil {
		m := make(map[string]string, len(l.Meta))
		for k, v := range l.Meta {
			m[k] = v
		}
		l.Meta = m
	}
	return l
}

// Config tunes a Manager.
type Config struct {
	// TTL is the lease duration granted by Acquire and Renew when the
	// caller does not request one. Defaults to 30 seconds.
	TTL time.Duration
	// MaxTTL caps caller-requested durations. Defaults to 10×TTL.
	MaxTTL time.Duration
	// SweepInterval is the period of the background reclamation sweep.
	// Defaults to TTL/4. Set negative to disable the sweeper entirely
	// (expired leases are then reclaimed only lazily, on access, or by
	// explicit SweepOnce calls — how the tests drive reclamation
	// deterministically).
	SweepInterval time.Duration
	// MaxLive, if positive, caps the number of concurrently live leases.
	// Long-lived namers guarantee their probe bounds only up to a
	// capacity; set MaxLive to that capacity to enforce it (Acquire then
	// fails with ErrCapacity instead of degrading). 0 means uncapped —
	// the namer's namespace is the only limit.
	MaxLive int
	// Shards overrides the number of lock stripes the lease table is
	// split into. 0 means nextPow2(GOMAXPROCS); other values are rounded
	// up to a power of two. Mostly a benchmarking knob: Shards: 1
	// reproduces the pre-sharding single-mutex manager.
	Shards int
	// Now is the clock; defaults to time.Now. Injectable for tests.
	Now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.TTL <= 0 {
		c.TTL = 30 * time.Second
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 10 * c.TTL
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = c.TTL / 4
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	c.Shards = nextPow2(c.Shards)
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Metrics is a snapshot of the manager's operation counters.
type Metrics struct {
	Acquired int64 // leases granted
	Renewed  int64 // successful renewals
	Released int64 // explicit releases
	Expired  int64 // leases reclaimed after TTL lapse
	// Rejected counts refused operations: capacity/namespace exhaustion,
	// wrong token, expiry, unknown name, cancellation — and ErrClosed,
	// which every other refusal already counted but the early shutdown
	// returns used to skip, under-reporting rejections during drain. A
	// refused batch call counts once, plus once per item the table itself
	// turned away.
	Rejected int64
	// ReclaimFailed counts names the manager tried to hand back and the
	// namer refused (namer.Release errored). Over a one-shot namer such
	// as MoirAnderson every reclaim fails with ErrOneShot and the slot is
	// lost for good; a nonzero value here is the only trace of that leak.
	ReclaimFailed int64
	Live          int // unexpired leases currently held
}

// Manager grants, renews, expires and reclaims leases over a Namer.
// All methods are safe for concurrent use.
type Manager struct {
	namer renaming.Namer
	cfg   Config

	// shards is the striped lease table; len(shards) is a power of two
	// and name & mask routes a name to its stripe.
	shards []shard
	mask   int

	closed atomic.Bool

	// Single-flight state for the capacity-pressure sweep in reserve: at
	// most one reserve-path sweepAll runs at a time, concurrent losers
	// join it. capSweepsRun/capSweepJoined instrument the coalescing for
	// the regression test that pins it.
	capSweepMu     sync.Mutex
	capSweepActive *capSweepCall
	capSweepsRun   atomic.Int64
	capSweepJoined atomic.Int64

	// live counts held names plus in-flight Acquire reservations.
	// Acquire reserves capacity here *before* probing the namer, so
	// MaxLive is enforced without any lock — and without the
	// grant-then-recheck race the single-mutex design had, where an
	// Acquire could fail with ErrCapacity while expired leases sat
	// unreclaimed.
	live atomic.Int64

	token atomic.Uint64

	acquired      atomic.Int64
	renewed       atomic.Int64
	released      atomic.Int64
	expired       atomic.Int64
	rejected      atomic.Int64
	reclaimFailed atomic.Int64

	done chan struct{}
	wg   sync.WaitGroup
}

// New builds a Manager over namer and starts its background sweeper
// (unless cfg.SweepInterval < 0). Close releases the sweeper.
func New(namer renaming.Namer, cfg Config) (*Manager, error) {
	if namer == nil {
		return nil, errors.New("lease: nil namer")
	}
	cfg.applyDefaults()
	m := &Manager{
		namer:  namer,
		cfg:    cfg,
		shards: make([]shard, cfg.Shards),
		mask:   cfg.Shards - 1,
		done:   make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i].leases = make(map[int]Lease)
	}
	if cfg.SweepInterval > 0 {
		m.wg.Add(1)
		go m.sweepLoop()
	}
	return m, nil
}

func (m *Manager) sweepLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
			m.SweepOnce()
		}
	}
}

// shard returns the stripe name routes to.
func (m *Manager) shard(name int) *shard { return &m.shards[name&m.mask] }

// clampTTL resolves a caller-requested duration against the config.
func (m *Manager) clampTTL(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		return m.cfg.TTL
	}
	if ttl > m.cfg.MaxTTL {
		return m.cfg.MaxTTL
	}
	return ttl
}

// reserve claims k units of MaxLive capacity before the namer is probed.
// Over the cap it reclaims expired leases (the eager sweep the pre-shard
// design ran under its lock) and retries; ErrCapacity is returned only
// after a sweep found nothing to reclaim, so an Acquire can no longer be
// rejected while expired leases sit unreclaimed.
func (m *Manager) reserve(k int) error {
	for {
		n := m.live.Add(int64(k))
		if m.cfg.MaxLive <= 0 || n <= int64(m.cfg.MaxLive) {
			return nil
		}
		m.live.Add(-int64(k))
		if m.reclaimForCapacity() == 0 {
			return ErrCapacity
		}
	}
}

// capSweepCall is one in-flight capacity-pressure sweep; latecomers block
// on done and share reclaimed instead of sweeping again themselves.
type capSweepCall struct {
	done      chan struct{}
	reclaimed int
}

// reclaimForCapacity runs — or joins — a single capacity-pressure sweep
// and reports how many leases it reclaimed. Pre-fix, every reserve that
// lost the MaxLive race ran its own sweepAll, so a rejection storm at
// capacity had each loser serialize on all O(shards) stripe locks over
// and over; single-flighting means one loser pays the sweep and the rest
// wait for its verdict. A joiner's verdict is computed from a clock read
// that may slightly predate its own failure — acceptable, since the
// capacity check is inherently a race against concurrent expiry.
func (m *Manager) reclaimForCapacity() int {
	m.capSweepMu.Lock()
	if c := m.capSweepActive; c != nil {
		m.capSweepMu.Unlock()
		m.capSweepJoined.Add(1)
		<-c.done
		return c.reclaimed
	}
	c := &capSweepCall{done: make(chan struct{})}
	m.capSweepActive = c
	m.capSweepMu.Unlock()

	m.capSweepsRun.Add(1)
	c.reclaimed = m.sweepAll(m.cfg.Now())

	m.capSweepMu.Lock()
	m.capSweepActive = nil
	m.capSweepMu.Unlock()
	close(c.done)
	return c.reclaimed
}

// Acquire grants a lease on a fresh name for owner. ttl <= 0 means the
// configured default; larger requests are capped at MaxTTL. meta is copied.
// When the namer cannot assign a name the error wraps
// renaming.ErrNamespaceExhausted. Acquire cannot be cancelled; use
// AcquireCtx when the caller may abandon a slow acquisition.
func (m *Manager) Acquire(owner string, ttl time.Duration, meta map[string]string) (Lease, error) {
	return m.AcquireCtx(context.Background(), owner, ttl, meta)
}

// AcquireCtx is Acquire with cancellation: if ctx ends while the namer is
// still probing, the acquisition aborts with an error matching
// renaming.ErrCancelled (wrapping ctx.Err()), the capacity reservation is
// returned, and no name or TAS slot stays held.
func (m *Manager) AcquireCtx(ctx context.Context, owner string, ttl time.Duration, meta map[string]string) (Lease, error) {
	if m.closed.Load() {
		m.rejected.Add(1)
		return Lease{}, ErrClosed
	}
	if err := m.reserve(1); err != nil {
		m.rejected.Add(1)
		return Lease{}, err
	}

	// Acquire is lock-free on the TAS array; the capacity slot is already
	// reserved, so acquisitions scale with the namer, not the bookkeeping.
	name, err := m.namer.Acquire(ctx)
	if err != nil {
		m.live.Add(-1)
		m.rejected.Add(1)
		return Lease{}, fmt.Errorf("lease: acquire: %w", err)
	}
	l := Lease{
		Name:      name,
		Token:     m.token.Add(1),
		Owner:     owner,
		ExpiresAt: m.cfg.Now().Add(m.clampTTL(ttl)),
		Meta:      meta,
	}.clone()

	sh := m.shard(name)
	sh.mu.Lock()
	if m.closed.Load() {
		// Raced with Close: hand the name straight back.
		sh.mu.Unlock()
		m.live.Add(-1)
		m.releaseName(name)
		m.rejected.Add(1)
		return Lease{}, ErrClosed
	}
	sh.leases[name] = l
	sh.expiries.push(heapEntry{at: l.ExpiresAt, name: name, token: l.Token})
	sh.mu.Unlock()
	m.acquired.Add(1)
	return l.clone(), nil
}

// AcquireBatch grants k leases in one call: one capacity reservation of k
// units, one batched namer acquisition (renaming.AcquireN, which amortizes
// its PRNG-stream setup across the batch), and one lock-stripe visit per
// involved stripe instead of one per lease. Either all k leases are
// granted or none: on exhaustion, cancellation or a race with Close, every
// name already taken is handed back and the reservation undone. Each lease
// carries its own fencing token; ttl and meta apply to all of them.
func (m *Manager) AcquireBatch(ctx context.Context, owner string, k int, ttl time.Duration, meta map[string]string) ([]Lease, error) {
	if k < 1 {
		return nil, fmt.Errorf("lease: AcquireBatch(%d): %w", k, renaming.ErrBadConfig)
	}
	if m.closed.Load() {
		m.rejected.Add(1)
		return nil, ErrClosed
	}
	// Reject impossible batch sizes before touching any shared state: a k
	// beyond the namespace can never complete, and a k beyond MaxLive must
	// not transiently inflate the live counter — reserve(k) adds k before
	// checking the cap, so without this guard one doomed oversized request
	// would make concurrent legitimate acquires spuriously hit ErrCapacity
	// (and k is client-controlled in cmd/renamed, so it must also never
	// size an allocation).
	if k > m.namer.Namespace() {
		m.rejected.Add(1)
		return nil, fmt.Errorf("lease: acquire batch of %d exceeds namespace %d: %w",
			k, m.namer.Namespace(), renaming.ErrNamespaceExhausted)
	}
	if m.cfg.MaxLive > 0 && k > m.cfg.MaxLive {
		m.rejected.Add(1)
		return nil, ErrCapacity
	}
	if err := m.reserve(k); err != nil {
		m.rejected.Add(1)
		return nil, err
	}
	names, err := m.namer.AcquireN(ctx, k)
	if err != nil {
		m.live.Add(-int64(k))
		m.rejected.Add(1)
		return nil, fmt.Errorf("lease: acquire batch: %w", err)
	}

	expiresAt := m.cfg.Now().Add(m.clampTTL(ttl))
	leases := make([]Lease, k)
	for i, name := range names {
		leases[i] = Lease{
			Name:      name,
			Token:     m.token.Add(1),
			Owner:     owner,
			ExpiresAt: expiresAt,
			Meta:      meta,
		}.clone()
	}

	// Bucket the batch by stripe so each involved stripe is locked exactly
	// once, however many of the k names it received.
	buckets := make(map[int][]Lease, len(m.shards))
	order := make([]int, 0, len(m.shards))
	for _, l := range leases {
		idx := l.Name & m.mask
		if _, ok := buckets[idx]; !ok {
			order = append(order, idx)
		}
		buckets[idx] = append(buckets[idx], l)
	}
	for pos, idx := range order {
		sh := &m.shards[idx]
		sh.mu.Lock()
		if m.closed.Load() {
			// Raced with Close. Leases inserted into earlier stripes are
			// owned by the table now — Close's drain hands their names
			// back and returns their capacity units. Everything not yet
			// inserted is still ours to unwind: release those names and
			// return their share of the reservation.
			sh.mu.Unlock()
			remaining := 0
			for _, ridx := range order[pos:] {
				for _, l := range buckets[ridx] {
					m.releaseName(l.Name)
					remaining++
				}
			}
			m.live.Add(-int64(remaining))
			m.rejected.Add(1)
			return nil, ErrClosed
		}
		for _, l := range buckets[idx] {
			sh.leases[l.Name] = l
			sh.expiries.push(heapEntry{at: l.ExpiresAt, name: l.Name, token: l.Token})
		}
		sh.mu.Unlock()
	}
	m.acquired.Add(int64(k))
	out := make([]Lease, k)
	for i, l := range leases {
		out[i] = l.clone()
	}
	return out, nil
}

// Renew extends the lease identified by (name, token) by ttl (<= 0 means
// the configured default). A renewal that arrives after expiry fails with
// ErrExpired and reclaims the name immediately. Holders heartbeating many
// leases should prefer RenewBatch, which pays one lock visit per involved
// stripe instead of one per lease.
func (m *Manager) Renew(name int, token uint64, ttl time.Duration) (Lease, error) {
	if m.closed.Load() {
		m.rejected.Add(1)
		return Lease{}, ErrClosed
	}
	sh := m.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Re-check under the shard lock: a renewal racing Close must not
	// succeed after Close has started, or the caller would hold a
	// "renewed" lease on a name the drain is about to hand back.
	if m.closed.Load() {
		m.rejected.Add(1)
		return Lease{}, ErrClosed
	}
	l, err := m.renewLocked(sh, name, token, ttl, m.cfg.Now())
	if err != nil {
		return Lease{}, err
	}
	sh.maybeCompact()
	m.renewed.Add(1)
	return l.clone(), nil
}

// renewLocked applies one renewal against sh — the shared core of Renew
// and RenewBatch. Refusals settle the rejected counter here; successes
// leave the renewed counter (and compaction) to the caller, which batches
// them. Callers hold sh.mu and name routes to sh.
func (m *Manager) renewLocked(sh *shard, name int, token uint64, ttl time.Duration, now time.Time) (Lease, error) {
	l, ok := sh.leases[name]
	if !ok {
		m.rejected.Add(1)
		return Lease{}, ErrUnknownName
	}
	if l.Token != token {
		m.rejected.Add(1)
		return Lease{}, ErrWrongToken
	}
	if now.After(l.ExpiresAt) {
		m.reclaimLocked(sh, name)
		m.rejected.Add(1)
		return Lease{}, ErrExpired
	}
	l.ExpiresAt = now.Add(m.clampTTL(ttl))
	sh.leases[name] = l
	sh.expiries.push(heapEntry{at: l.ExpiresAt, name: name, token: l.Token})
	return l, nil
}

// Release ends the lease identified by (name, token) and returns the name
// to the namer's pool. A release that arrives after expiry fails with
// ErrExpired — the holder already lost the name — and reclaims it
// immediately, so the outcome does not depend on sweeper timing.
func (m *Manager) Release(name int, token uint64) error {
	if m.closed.Load() {
		m.rejected.Add(1)
		return ErrClosed
	}
	sh := m.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if m.closed.Load() {
		m.rejected.Add(1)
		return ErrClosed
	}
	return m.releaseLocked(sh, name, token, m.cfg.Now())
}

// releaseLocked applies one release against sh — the shared core of
// Release and ReleaseBatch. Refusals settle the rejected counter; a
// successful removal still propagates the namer's Release error (e.g.
// ErrOneShot) after counting it in ReclaimFailed. Callers hold sh.mu and
// name routes to sh.
func (m *Manager) releaseLocked(sh *shard, name int, token uint64, now time.Time) error {
	l, ok := sh.leases[name]
	if !ok {
		m.rejected.Add(1)
		return ErrUnknownName
	}
	if l.Token != token {
		m.rejected.Add(1)
		return ErrWrongToken
	}
	if now.After(l.ExpiresAt) {
		m.reclaimLocked(sh, name)
		m.rejected.Add(1)
		return ErrExpired
	}
	delete(sh.leases, name)
	sh.maybeCompact()
	m.live.Add(-1)
	m.released.Add(1)
	return m.releaseName(name)
}

// Get returns the live lease for name, reclaiming it first if it already
// expired (in which case ok is false).
func (m *Manager) Get(name int) (l Lease, ok bool) {
	sh := m.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	l, ok = sh.leases[name]
	if !ok {
		return Lease{}, false
	}
	if m.cfg.Now().After(l.ExpiresAt) {
		m.reclaimLocked(sh, name)
		return Lease{}, false
	}
	return l.clone(), true
}

// Leases snapshots all live (unexpired) leases, ordered by name. The
// snapshot is per-shard consistent, not global: shards are locked one at
// a time, so a holder releasing one name and acquiring another while the
// snapshot runs can appear under both or neither.
func (m *Manager) Leases() []Lease {
	now := m.cfg.Now()
	var out []Lease
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, l := range sh.leases {
			if now.After(l.ExpiresAt) {
				continue
			}
			out = append(out, l.clone())
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SweepOnce reclaims every expired lease now and reports how many it
// reclaimed. The background sweeper calls this on every tick; tests call
// it directly for deterministic reclamation. One sweep is O(expired) per
// shard — it pops each shard's expiry heap until the head is unexpired —
// rather than a scan of every live lease.
func (m *Manager) SweepOnce() int {
	return m.sweepAll(m.cfg.Now())
}

// sweepAll sweeps every shard, locking each in turn (never two at once).
func (m *Manager) sweepAll(now time.Time) int {
	reclaimed := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		reclaimed += m.sweepLocked(sh, now)
		sh.mu.Unlock()
	}
	return reclaimed
}

// Metrics returns a snapshot of the operation counters. Live excludes
// leases that have expired but not yet been reclaimed, matching Leases(),
// so dashboards don't show phantom holders when the sweeper is off. Like
// Leases, the count is per-shard consistent only: under concurrent churn
// it can transiently read above MaxLive (a holder's old and new names
// both counted), so don't alert on Live <= capacity as a hard invariant.
// Computing Live is an O(live/shards) scan per stripe — one stripe locked
// at a time, never the whole table — so poll /debug/vars at monitoring
// cadence, not in a tight loop.
func (m *Manager) Metrics() Metrics {
	now := m.cfg.Now()
	live := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, l := range sh.leases {
			if !now.After(l.ExpiresAt) {
				live++
			}
		}
		sh.mu.Unlock()
	}
	return Metrics{
		Acquired:      m.acquired.Load(),
		Renewed:       m.renewed.Load(),
		Released:      m.released.Load(),
		Expired:       m.expired.Load(),
		Rejected:      m.rejected.Load(),
		ReclaimFailed: m.reclaimFailed.Load(),
		Live:          live,
	}
}

// Namespace exposes the underlying namer's namespace bound.
func (m *Manager) Namespace() int { return m.namer.Namespace() }

// Close stops the sweeper, releases every live lease back to the namer and
// rejects all further operations. Close is idempotent. Releases the namer
// refuses are counted in Metrics.ReclaimFailed.
func (m *Manager) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for name := range sh.leases {
			delete(sh.leases, name)
			m.live.Add(-1)
			m.releaseName(name)
		}
		sh.expiries = nil
		sh.mu.Unlock()
	}
	close(m.done)
	m.wg.Wait()
	return nil
}
