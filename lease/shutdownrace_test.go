package lease

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	renaming "repro"
)

// recordingObserver tallies observer events and can run a hook on the
// first acquire it sees — the lever for deterministically closing the
// manager in the middle of a multi-stripe batch insert.
type recordingObserver struct {
	mu        sync.Mutex
	acquires  map[int]uint64 // name -> token
	releases  map[int]uint64
	onFirst   func()
	firstDone bool
}

func (o *recordingObserver) ObserveAcquire(l Lease) {
	o.mu.Lock()
	if o.acquires == nil {
		o.acquires = map[int]uint64{}
	}
	o.acquires[l.Name] = l.Token
	fire := !o.firstDone && o.onFirst != nil
	o.firstDone = true
	o.mu.Unlock()
	if fire {
		o.onFirst()
	}
}

func (o *recordingObserver) ObserveRenew(int, uint64, time.Time) {}

func (o *recordingObserver) ObserveRelease(name int, token uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.releases == nil {
		o.releases = map[int]uint64{}
	}
	o.releases[name] = token
}

func (o *recordingObserver) ObserveExpire(int, uint64) {}

// TestAcquireBatchShutdownRaceUnwindsInsertedLeases pins the batch
// unwind against Shutdown: when a multi-stripe AcquireBatch loses the
// race to Shutdown partway through its stripe walk, the leases it
// already inserted (and journaled) must come back OUT — under Shutdown
// there is no Close drain to return them, so without the unwind they
// would be restored after reboot as durable ghosts whose owner was told
// the acquisition failed.
func TestAcquireBatchShutdownRaceUnwindsInsertedLeases(t *testing.T) {
	// linearscan assigns 0,1,2,...: six names split deterministically
	// across two stripes (even/odd), so the walk has a second stripe to
	// trip over after the first stripe's inserts were observed.
	nm, err := renaming.Open("linearscan?n=16")
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	m, err := New(nm, Config{TTL: time.Minute, SweepInterval: -1, Shards: 2, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	// The first stripe's first insert fires mid-batch, after that
	// stripe's closed-check passed. Shutdown must run concurrently — it
	// drains the in-flight counter, and this batch IS in flight, so a
	// synchronous call would deadlock (which is exactly the quiescence
	// guarantee under test). Wait for the closed flip, then let the walk
	// continue: its NEXT stripe sees closed and must unwind everything,
	// and Shutdown must not return before that unwind is journaled.
	shutdownDone := make(chan struct{})
	obs.onFirst = func() {
		go func() {
			m.Shutdown()
			close(shutdownDone)
		}()
		for !m.closed.Load() {
			runtime.Gosched()
		}
	}

	_, err = m.AcquireBatch(context.Background(), "race", 6, 0, nil)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("AcquireBatch racing Shutdown = %v, want ErrClosed", err)
	}
	select {
	case <-shutdownDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never finished draining the in-flight batch")
	}
	// Quiescence ordering: by the time Shutdown returned, the unwind's
	// release records must already have been observed (checked below by
	// the acquire/release balance).

	// No ghost leases: the table is empty and the live counter settled.
	mt := m.Metrics()
	if mt.Live != 0 {
		t.Fatalf("%d leases left in the table after unwound batch", mt.Live)
	}
	if got := m.live.Load(); got != 0 {
		t.Fatalf("live counter = %d after unwound batch, want 0", got)
	}
	// The durable story balances: every journaled acquire has a matching
	// journaled release with the same token, so a replay restores
	// nothing.
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.acquires) == 0 {
		t.Fatal("test never exercised the insert path (no acquires observed)")
	}
	for name, tok := range obs.acquires {
		rtok, ok := obs.releases[name]
		if !ok {
			t.Fatalf("journaled acquire of name %d (token %d) has no balancing release — durable ghost", name, tok)
		}
		if rtok != tok {
			t.Fatalf("name %d released with token %d, acquired with %d", name, rtok, tok)
		}
	}
	// And the namer got every name back: all six slots free again.
	for i := 0; i < 6; i++ {
		u, err := nm.Acquire(context.Background())
		if err != nil {
			t.Fatalf("slot not returned to namer: %v", err)
		}
		if u >= 6 {
			t.Fatalf("linearscan handed out %d; a slot below 6 is still marked held", u)
		}
	}
}
