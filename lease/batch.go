package lease

import (
	"context"
	"fmt"
	"time"

	renaming "repro"
)

// At production scale renewal — not acquisition — is the dominant lease
// traffic: every live holder heartbeats every TTL/3, so a standing
// population of a million holders means a million renew operations per
// heartbeat interval while the acquire path idles. RenewBatch and
// ReleaseBatch mirror AcquireBatch's shape for that hot path: items are
// bucketed by lock stripe so each involved shard is locked exactly once
// however many items it received, the clock is read once per call, and
// the renewed counter settles once per batch instead of once per lease.
//
// Unlike AcquireBatch the batch forms are NOT all-or-nothing: each item
// carries its own typed outcome (ErrUnknownName, ErrWrongToken,
// ErrExpired, ...), because a heartbeating session must learn exactly
// which of its leases it lost — fencing would be useless if one stale
// token poisoned the whole heartbeat.

// RenewItem identifies one lease in a RenewBatch: the (name, token) pair
// minted at acquisition.
type RenewItem struct {
	Name  int
	Token uint64
}

// RenewResult is the per-item outcome of a RenewBatch. On success Err is
// nil and Lease carries the extended deadline; otherwise Err is one of
// the typed refusals (ErrUnknownName, ErrWrongToken, ErrExpired — or
// ErrClosed / an error matching renaming.ErrCancelled for items a
// mid-batch shutdown or cancellation left unprocessed).
type RenewResult struct {
	Lease Lease
	Err   error
}

// ReleaseItem identifies one lease in a ReleaseBatch.
type ReleaseItem struct {
	Name  int
	Token uint64
}

// ReleaseResult is the per-item outcome of a ReleaseBatch. A lease that
// was removed but whose name the namer refused to take back (e.g.
// ErrOneShot) carries that namer error, matching Release.
type ReleaseResult struct {
	Err error
}

// stripePlan groups a batch's item indices by the lock stripe their name
// routes to, so the batch walk locks each involved stripe exactly once.
// Built with a counting sort into two flat slices — a renewal storm runs
// this on every heartbeat, so no per-stripe map or slice-of-slices
// allocations. Stripes are visited in index order; items keep their
// request order within a stripe.
type stripePlan struct {
	idxs   []int // item indices, grouped by stripe
	starts []int // starts[s]..starts[s+1] is stripe s's group in idxs
}

// group returns the item indices routed to stripe s.
func (p *stripePlan) group(s int) []int { return p.idxs[p.starts[s]:p.starts[s+1]] }

// restFrom returns all item indices in stripe s and later — the
// unprocessed remainder when a batch walk aborts at stripe s.
func (p *stripePlan) restFrom(s int) []int { return p.idxs[p.starts[s]:] }

// planStripes builds the stripe plan for n items whose i-th name is
// name(i).
func (m *Manager) planStripes(name func(i int) int, n int) stripePlan {
	shards := len(m.shards)
	starts := make([]int, shards+1)
	for i := 0; i < n; i++ {
		starts[(name(i)&m.mask)+1]++
	}
	for s := 0; s < shards; s++ {
		starts[s+1] += starts[s]
	}
	idxs := make([]int, n)
	fill := make([]int, shards)
	for i := 0; i < n; i++ {
		s := name(i) & m.mask
		idxs[starts[s]+fill[s]] = i
		fill[s]++
	}
	return stripePlan{idxs: idxs, starts: starts}
}

// RenewBatch extends every lease in items by ttl (<= 0 means the
// configured default) through one lock visit per involved stripe. The
// returned slice is index-aligned with items; the call-level error is
// non-nil only when nothing was attempted (manager closed, context
// already done, empty batch is a no-op). Cancellation between stripe
// visits stops the walk and marks the remaining items' results with an
// error matching renaming.ErrCancelled — items already visited keep
// their real outcomes, so a session can still trust what it learned.
func (m *Manager) RenewBatch(ctx context.Context, items []RenewItem, ttl time.Duration) ([]RenewResult, error) {
	if !m.enterOp() {
		m.rejected.Add(1)
		return nil, ErrClosed
	}
	defer m.exitOp()
	if err := ctx.Err(); err != nil {
		m.rejected.Add(1)
		return nil, fmt.Errorf("lease: renew batch: %w: %w", renaming.ErrCancelled, err)
	}
	if len(items) == 0 {
		return nil, nil
	}
	results := make([]RenewResult, len(items))
	plan := m.planStripes(func(i int) int { return items[i].Name }, len(items))
	now := m.cfg.Now()
	var renewed int64
	// failRest stamps err on every item in the not-yet-visited stripes;
	// the abort is one rejection event, matching AcquireBatch's
	// call-level accounting.
	failRest := func(rest []int, err error) {
		for _, i := range rest {
			results[i].Err = err
		}
		m.rejected.Add(1)
	}
	for s := range m.shards {
		group := plan.group(s)
		if len(group) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			failRest(plan.restFrom(s), fmt.Errorf("lease: renew batch: %w: %w", renaming.ErrCancelled, err))
			break
		}
		sh := &m.shards[s]
		sh.mu.Lock()
		if m.closed.Load() {
			sh.mu.Unlock()
			failRest(plan.restFrom(s), ErrClosed)
			break
		}
		var lapsed []int
		for _, i := range group {
			l, expired, err := m.renewLocked(sh, items[i].Name, items[i].Token, ttl, now)
			if err != nil {
				results[i].Err = err
				if expired {
					lapsed = append(lapsed, items[i].Name)
				}
				continue
			}
			results[i].Lease = l.clone()
			renewed++
		}
		sh.maybeCompact()
		sh.mu.Unlock()
		// Lapsed leases were dropped under the lock; their names go back
		// to the namer out here so a slow Release never stalls the stripe.
		m.releaseNames(lapsed)
	}
	m.renewed.Add(renewed)
	return results, nil
}

// ReleaseBatch ends every lease in items through one lock visit per
// involved stripe, returning index-aligned per-item outcomes (see
// ReleaseResult). Like RenewBatch it is not all-or-nothing; cancellation
// or a racing Close between stripe visits marks only the unprocessed
// remainder — names already handed back stay handed back.
func (m *Manager) ReleaseBatch(ctx context.Context, items []ReleaseItem) ([]ReleaseResult, error) {
	if !m.enterOp() {
		m.rejected.Add(1)
		return nil, ErrClosed
	}
	defer m.exitOp()
	if err := ctx.Err(); err != nil {
		m.rejected.Add(1)
		return nil, fmt.Errorf("lease: release batch: %w: %w", renaming.ErrCancelled, err)
	}
	if len(items) == 0 {
		return nil, nil
	}
	results := make([]ReleaseResult, len(items))
	plan := m.planStripes(func(i int) int { return items[i].Name }, len(items))
	now := m.cfg.Now()
	failRest := func(rest []int, err error) {
		for _, i := range rest {
			results[i].Err = err
		}
		m.rejected.Add(1)
	}
	for s := range m.shards {
		group := plan.group(s)
		if len(group) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			failRest(plan.restFrom(s), fmt.Errorf("lease: release batch: %w: %w", renaming.ErrCancelled, err))
			break
		}
		sh := &m.shards[s]
		sh.mu.Lock()
		if m.closed.Load() {
			sh.mu.Unlock()
			failRest(plan.restFrom(s), ErrClosed)
			break
		}
		// handbacks are the names this stripe visit removed from the table;
		// the namer gets them back only after the stripe unlocks. For a
		// successful release (expired == false) the namer's verdict is the
		// item's outcome, matching Release.
		type handback struct {
			idx     int
			expired bool
		}
		var handbacks []handback
		for _, i := range group {
			hb, err := m.releaseLocked(sh, items[i].Name, items[i].Token, now)
			results[i].Err = err
			if hb {
				handbacks = append(handbacks, handback{idx: i, expired: err != nil})
			}
		}
		sh.mu.Unlock()
		for _, hb := range handbacks {
			rerr := m.releaseName(items[hb.idx].Name)
			if !hb.expired && rerr != nil {
				results[hb.idx].Err = rerr
			}
		}
	}
	return results, nil
}
