package lease

import (
	"errors"
	"sync"
	"testing"
	"time"

	renaming "repro"
)

// TestAcquireSweepsBeforeRejecting: capacity rejection must reclaim
// expired leases first, on every path. Fill the cap with short leases, let
// them lapse, and acquire again without any explicit sweep.
func TestAcquireSweepsBeforeRejecting(t *testing.T) {
	nm, err := renaming.NewLevelArray(16)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: 10 * time.Second, SweepInterval: -1, MaxLive: 2, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		if _, err := m.Acquire("w", time.Second, nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	clk.Advance(2 * time.Second)
	// Both leases are expired but unreclaimed; both capacity slots must be
	// recoverable without SweepOnce.
	for i := 0; i < 2; i++ {
		if _, err := m.Acquire("w", 0, nil); err != nil {
			t.Fatalf("acquire over expired leases %d: %v", i, err)
		}
	}
	if _, err := m.Acquire("w", 0, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("acquire over live leases = %v, want ErrCapacity", err)
	}
	if mt := m.Metrics(); mt.Expired != 2 || mt.Live != 2 {
		t.Fatalf("metrics = %+v", mt)
	}
}

// hookClock is a fakeClock whose Now() can fire a one-shot side effect,
// used to interleave another operation inside a specific window of an
// in-flight Acquire (between GetName and the lease-table insert).
type hookClock struct {
	mu   sync.Mutex
	t    time.Time
	hook func()
}

func (c *hookClock) Now() time.Time {
	c.mu.Lock()
	h := c.hook
	c.hook = nil
	c.mu.Unlock()
	if h != nil {
		h()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *hookClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestAcquireCapacityRaceReclaimsExpired is the regression test for the
// pre-sharding bug: an Acquire that lost the capacity race between its
// pre-check and its grant failed with ErrCapacity *without* reclaiming
// expired leases, so a name that had already lapsed blocked the grant.
//
// The interleaving is reproduced deterministically with a clock hook: the
// outer Acquire stamps its lease's ExpiresAt via Now() after GetName, and
// the hook uses that window to run a full interloper Acquire and then
// expire it. The old recheck then saw the table at MaxLive and rejected
// the outer call even though its sole occupant was expired. Under
// reservation semantics the outer Acquire already holds the capacity slot
// before GetName, so it is the interloper that is turned away (after a
// sweep found nothing reclaimable), and the outer grant must succeed.
func TestAcquireCapacityRaceReclaimsExpired(t *testing.T) {
	nm, err := renaming.NewLevelArray(8)
	if err != nil {
		t.Fatal(err)
	}
	clk := &hookClock{t: time.Unix(1000, 0)}
	m, err := New(nm, Config{TTL: 10 * time.Second, SweepInterval: -1, MaxLive: 1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var innerErr error
	clk.mu.Lock()
	clk.hook = func() {
		_, innerErr = m.Acquire("interloper", time.Second, nil)
		clk.Advance(2 * time.Second)
	}
	clk.mu.Unlock()

	l, err := m.Acquire("outer", 0, nil)
	if err != nil {
		t.Fatalf("outer Acquire = %v; capacity race rejected a grant while holding the reservation", err)
	}
	if !errors.Is(innerErr, ErrCapacity) {
		t.Fatalf("interloper Acquire = %v, want ErrCapacity (slot reserved by in-flight outer)", innerErr)
	}
	if got, ok := m.Get(l.Name); !ok || got.Token != l.Token {
		t.Fatalf("outer lease not live: %+v, %v", got, ok)
	}
	if mt := m.Metrics(); mt.Live != 1 {
		t.Fatalf("metrics = %+v, want exactly the outer lease live", mt)
	}
}

// TestReclaimFailedCounted: over a one-shot namer every reclamation's
// namer.Release fails; the failures must surface in Metrics.ReclaimFailed
// instead of being silently discarded (pre-fix, reclaimLocked and Close
// both dropped the error on the floor).
func TestReclaimFailedCounted(t *testing.T) {
	nm, err := renaming.NewMoirAnderson(4) // one-shot: Release always ErrOneShot
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: time.Second, SweepInterval: -1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Sweep-path reclaim of an expired lease.
	if _, err := m.Acquire("w", 0, nil); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if n := m.SweepOnce(); n != 1 {
		t.Fatalf("SweepOnce = %d, want 1", n)
	}
	if mt := m.Metrics(); mt.ReclaimFailed != 1 || mt.Expired != 1 {
		t.Fatalf("after sweep: metrics = %+v, want ReclaimFailed 1", mt)
	}

	// Explicit Release propagates the namer error and counts it too.
	l, err := m.Acquire("w", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(l.Name, l.Token); !errors.Is(err, renaming.ErrOneShot) {
		t.Fatalf("Release over one-shot namer = %v, want ErrOneShot", err)
	}
	if mt := m.Metrics(); mt.ReclaimFailed != 2 {
		t.Fatalf("after release: metrics = %+v, want ReclaimFailed 2", mt)
	}

	// Close drains live leases through the same accounting.
	if _, err := m.Acquire("w", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if mt := m.Metrics(); mt.ReclaimFailed != 3 {
		t.Fatalf("after close: metrics = %+v, want ReclaimFailed 3", mt)
	}
}

// TestSetMaxLiveShrinkWithExpiredPending is the clock-injected shrink
// regression: the cap is lowered while EXPIRED leases still occupy
// reservation slots. The reserve path at the new, smaller cap must
// reclaim them before rejecting — a shrink must not wedge acquisition
// behind corpses — and the post-shrink cap must then hold exactly.
func TestSetMaxLiveShrinkWithExpiredPending(t *testing.T) {
	nm, err := renaming.NewLevelArray(16)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: 10 * time.Second, SweepInterval: -1, MaxLive: 4, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 4; i++ {
		if _, err := m.Acquire("w", time.Second, nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	clk.Advance(2 * time.Second)
	// All four leases are expired but unreclaimed; the reservation counter
	// still reads 4. Shrink underneath them.
	if err := m.SetMaxLive(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Acquire("w", 0, nil); err != nil {
			t.Fatalf("acquire %d over expired leases after shrink: %v", i, err)
		}
	}
	if _, err := m.Acquire("w", 0, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("acquire over the shrunk cap = %v, want ErrCapacity", err)
	}
	mt := m.Metrics()
	if mt.MaxLive != 2 || mt.Resizes != 1 || mt.Live != 2 || mt.Expired != 4 {
		t.Fatalf("metrics = %+v, want MaxLive 2, Resizes 1, Live 2, Expired 4", mt)
	}
}

// TestSetMaxLiveShrinkBelowLive pins the documented shrink-below-live
// semantics: live holders ride to expiry (or release), new acquires
// fail until attrition brings live under the new cap, and nothing is
// revoked by the shrink itself.
func TestSetMaxLiveShrinkBelowLive(t *testing.T) {
	nm, err := renaming.NewLevelArray(16)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: 10 * time.Second, SweepInterval: -1, MaxLive: 4, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	leases := make([]Lease, 0, 4)
	for i := 0; i < 4; i++ {
		l, err := m.Acquire("w", 0, nil)
		if err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		leases = append(leases, l)
	}
	if err := m.SetMaxLive(2); err != nil {
		t.Fatal(err)
	}
	// All four holders survive the shrink and can still renew.
	for _, l := range leases {
		if _, err := m.Renew(l.Name, l.Token, 0); err != nil {
			t.Fatalf("Renew(%d) after shrink: %v", l.Name, err)
		}
	}
	if mt := m.Metrics(); mt.Live != 4 || mt.MaxLive != 2 {
		t.Fatalf("metrics = %+v, want 4 riders over a cap of 2", mt)
	}
	if _, err := m.Acquire("w", 0, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("acquire with live > cap = %v, want ErrCapacity", err)
	}
	// Attrition: releasing down to the cap is not enough (live == cap is
	// full); one below opens exactly one slot.
	for i := 0; i < 3; i++ {
		if err := m.Release(leases[i].Name, leases[i].Token); err != nil {
			t.Fatalf("Release %d: %v", i, err)
		}
	}
	if _, err := m.Acquire("w", 0, nil); err != nil {
		t.Fatalf("acquire after attrition under the cap: %v", err)
	}
	if _, err := m.Acquire("w", 0, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("acquire at the refilled cap = %v, want ErrCapacity", err)
	}
}

// TestSetMaxLiveRacesReserveAndSweep hammers the lock-free reserve path
// and the sweeper while the cap flaps underneath them — the -race proof
// that SetMaxLive's atomic conversion kept reserve lock-free and tear-
// free. Liveness and the race detector are the assertions; the final
// settle checks the counters still reconcile.
func TestSetMaxLiveRacesReserveAndSweep(t *testing.T) {
	nm, err := renaming.NewLevelArray(256)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(nm, Config{TTL: time.Minute, SweepInterval: -1, MaxLive: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var held []Lease
			for i := 0; i < 300; i++ {
				l, err := m.Acquire("w", 0, nil)
				if err != nil {
					if !errors.Is(err, ErrCapacity) {
						t.Errorf("Acquire: %v", err)
						return
					}
					for _, h := range held {
						if err := m.Release(h.Name, h.Token); err != nil {
							t.Errorf("Release: %v", err)
						}
					}
					held = held[:0]
					continue
				}
				held = append(held, l)
			}
			for _, h := range held {
				if err := m.Release(h.Name, h.Token); err != nil {
					t.Errorf("Release: %v", err)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			m.SweepOnce()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		caps := []int{8, 64, 2, 0, 32}
		for i := 0; i < 200; i++ {
			if err := m.SetMaxLive(caps[i%len(caps)]); err != nil {
				t.Errorf("SetMaxLive: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	mt := m.Metrics()
	if mt.Resizes != 200 {
		t.Fatalf("Resizes = %d, want 200", mt.Resizes)
	}
	if mt.Live != 0 || mt.Reserved != 0 {
		t.Fatalf("metrics after full release = %+v, want empty table", mt)
	}
}

// TestMetricsExposesSweepAndReservedCounters: the Metrics fields the
// telemetry exposition scrapes — CapacitySweeps counts at-capacity
// sweep passes actually run, and Reserved tracks reservations + held
// leases (equal to Live when no acquire is in flight).
func TestMetricsExposesSweepAndReservedCounters(t *testing.T) {
	nm, err := renaming.NewLevelArray(16)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: 10 * time.Second, SweepInterval: -1, MaxLive: 2, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		if _, err := m.Acquire("w", time.Second, nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if mt := m.Metrics(); mt.Reserved != 2 || mt.Live != 2 {
		t.Fatalf("Reserved = %d, Live = %d, want 2, 2", mt.Reserved, mt.Live)
	}
	clk.Advance(2 * time.Second)
	// This acquire finds the table full and runs the at-capacity sweep.
	if _, err := m.Acquire("w", 0, nil); err != nil {
		t.Fatalf("acquire over expired leases: %v", err)
	}
	mt := m.Metrics()
	if mt.CapacitySweeps < 1 {
		t.Fatalf("CapacitySweeps = %d, want >= 1", mt.CapacitySweeps)
	}
	if mt.CapacitySweepJoins != 0 {
		t.Fatalf("CapacitySweepJoins = %d, want 0 (no concurrent acquirers)", mt.CapacitySweepJoins)
	}
	if mt.Reserved != int64(mt.Live) {
		t.Fatalf("Reserved = %d disagrees with Live = %d at rest", mt.Reserved, mt.Live)
	}
}
