package lease

import (
	"errors"
	"sync"
	"testing"
	"time"

	renaming "repro"
)

// TestAcquireSweepsBeforeRejecting: capacity rejection must reclaim
// expired leases first, on every path. Fill the cap with short leases, let
// them lapse, and acquire again without any explicit sweep.
func TestAcquireSweepsBeforeRejecting(t *testing.T) {
	nm, err := renaming.NewLevelArray(16)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: 10 * time.Second, SweepInterval: -1, MaxLive: 2, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		if _, err := m.Acquire("w", time.Second, nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	clk.Advance(2 * time.Second)
	// Both leases are expired but unreclaimed; both capacity slots must be
	// recoverable without SweepOnce.
	for i := 0; i < 2; i++ {
		if _, err := m.Acquire("w", 0, nil); err != nil {
			t.Fatalf("acquire over expired leases %d: %v", i, err)
		}
	}
	if _, err := m.Acquire("w", 0, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("acquire over live leases = %v, want ErrCapacity", err)
	}
	if mt := m.Metrics(); mt.Expired != 2 || mt.Live != 2 {
		t.Fatalf("metrics = %+v", mt)
	}
}

// hookClock is a fakeClock whose Now() can fire a one-shot side effect,
// used to interleave another operation inside a specific window of an
// in-flight Acquire (between GetName and the lease-table insert).
type hookClock struct {
	mu   sync.Mutex
	t    time.Time
	hook func()
}

func (c *hookClock) Now() time.Time {
	c.mu.Lock()
	h := c.hook
	c.hook = nil
	c.mu.Unlock()
	if h != nil {
		h()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *hookClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestAcquireCapacityRaceReclaimsExpired is the regression test for the
// pre-sharding bug: an Acquire that lost the capacity race between its
// pre-check and its grant failed with ErrCapacity *without* reclaiming
// expired leases, so a name that had already lapsed blocked the grant.
//
// The interleaving is reproduced deterministically with a clock hook: the
// outer Acquire stamps its lease's ExpiresAt via Now() after GetName, and
// the hook uses that window to run a full interloper Acquire and then
// expire it. The old recheck then saw the table at MaxLive and rejected
// the outer call even though its sole occupant was expired. Under
// reservation semantics the outer Acquire already holds the capacity slot
// before GetName, so it is the interloper that is turned away (after a
// sweep found nothing reclaimable), and the outer grant must succeed.
func TestAcquireCapacityRaceReclaimsExpired(t *testing.T) {
	nm, err := renaming.NewLevelArray(8)
	if err != nil {
		t.Fatal(err)
	}
	clk := &hookClock{t: time.Unix(1000, 0)}
	m, err := New(nm, Config{TTL: 10 * time.Second, SweepInterval: -1, MaxLive: 1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var innerErr error
	clk.mu.Lock()
	clk.hook = func() {
		_, innerErr = m.Acquire("interloper", time.Second, nil)
		clk.Advance(2 * time.Second)
	}
	clk.mu.Unlock()

	l, err := m.Acquire("outer", 0, nil)
	if err != nil {
		t.Fatalf("outer Acquire = %v; capacity race rejected a grant while holding the reservation", err)
	}
	if !errors.Is(innerErr, ErrCapacity) {
		t.Fatalf("interloper Acquire = %v, want ErrCapacity (slot reserved by in-flight outer)", innerErr)
	}
	if got, ok := m.Get(l.Name); !ok || got.Token != l.Token {
		t.Fatalf("outer lease not live: %+v, %v", got, ok)
	}
	if mt := m.Metrics(); mt.Live != 1 {
		t.Fatalf("metrics = %+v, want exactly the outer lease live", mt)
	}
}

// TestReclaimFailedCounted: over a one-shot namer every reclamation's
// namer.Release fails; the failures must surface in Metrics.ReclaimFailed
// instead of being silently discarded (pre-fix, reclaimLocked and Close
// both dropped the error on the floor).
func TestReclaimFailedCounted(t *testing.T) {
	nm, err := renaming.NewMoirAnderson(4) // one-shot: Release always ErrOneShot
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: time.Second, SweepInterval: -1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Sweep-path reclaim of an expired lease.
	if _, err := m.Acquire("w", 0, nil); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if n := m.SweepOnce(); n != 1 {
		t.Fatalf("SweepOnce = %d, want 1", n)
	}
	if mt := m.Metrics(); mt.ReclaimFailed != 1 || mt.Expired != 1 {
		t.Fatalf("after sweep: metrics = %+v, want ReclaimFailed 1", mt)
	}

	// Explicit Release propagates the namer error and counts it too.
	l, err := m.Acquire("w", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(l.Name, l.Token); !errors.Is(err, renaming.ErrOneShot) {
		t.Fatalf("Release over one-shot namer = %v, want ErrOneShot", err)
	}
	if mt := m.Metrics(); mt.ReclaimFailed != 2 {
		t.Fatalf("after release: metrics = %+v, want ReclaimFailed 2", mt)
	}

	// Close drains live leases through the same accounting.
	if _, err := m.Acquire("w", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if mt := m.Metrics(); mt.ReclaimFailed != 3 {
		t.Fatalf("after close: metrics = %+v, want ReclaimFailed 3", mt)
	}
}

// TestMetricsExposesSweepAndReservedCounters: the Metrics fields the
// telemetry exposition scrapes — CapacitySweeps counts at-capacity
// sweep passes actually run, and Reserved tracks reservations + held
// leases (equal to Live when no acquire is in flight).
func TestMetricsExposesSweepAndReservedCounters(t *testing.T) {
	nm, err := renaming.NewLevelArray(16)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: 10 * time.Second, SweepInterval: -1, MaxLive: 2, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		if _, err := m.Acquire("w", time.Second, nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if mt := m.Metrics(); mt.Reserved != 2 || mt.Live != 2 {
		t.Fatalf("Reserved = %d, Live = %d, want 2, 2", mt.Reserved, mt.Live)
	}
	clk.Advance(2 * time.Second)
	// This acquire finds the table full and runs the at-capacity sweep.
	if _, err := m.Acquire("w", 0, nil); err != nil {
		t.Fatalf("acquire over expired leases: %v", err)
	}
	mt := m.Metrics()
	if mt.CapacitySweeps < 1 {
		t.Fatalf("CapacitySweeps = %d, want >= 1", mt.CapacitySweeps)
	}
	if mt.CapacitySweepJoins != 0 {
		t.Fatalf("CapacitySweepJoins = %d, want 0 (no concurrent acquirers)", mt.CapacitySweepJoins)
	}
	if mt.Reserved != int64(mt.Live) {
		t.Fatalf("Reserved = %d disagrees with Live = %d at rest", mt.Reserved, mt.Live)
	}
}
