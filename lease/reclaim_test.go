package lease

import (
	"context"
	"testing"
	"time"

	renaming "repro"
)

// blockingNamer wraps a real namer but parks every Release until the
// test says go, signalling entry on released. It pins the reclaim-path
// locking contract: namer.Release is outside this package's control and
// may block arbitrarily long, so no stripe mutex may be held across it.
type blockingNamer struct {
	renaming.Namer
	released chan int      // one send per Release entry
	gate     chan struct{} // Release proceeds when closed (or receives)
}

func (b *blockingNamer) Release(name int) error {
	b.released <- name
	<-b.gate
	return b.Namer.Release(name)
}

// TestSweepReleasesOutsideStripeLock drives a sweep whose namer.Release
// blocks and asserts that operations on another lease in the SAME stripe
// still complete — i.e. the expired name was collected under the lock
// but handed back after unlock. Pre-fix this deadlocked: sweepLocked
// called namer.Release while holding the stripe mutex, so one slow
// reclaim stalled every renewal routed to the stripe.
func TestSweepReleasesOutsideStripeLock(t *testing.T) {
	inner, err := renaming.NewLevelArray(8)
	if err != nil {
		t.Fatal(err)
	}
	bn := &blockingNamer{Namer: inner, released: make(chan int, 8), gate: make(chan struct{})}
	clk := newFakeClock()
	// Shards: 1 forces every name into one stripe, making the test
	// deterministic: if the sweep held the stripe lock across Release,
	// ANY other operation would hang.
	m, err := New(bn, Config{TTL: 10 * time.Second, SweepInterval: -1, Shards: 1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(bn.gate) // let Close's drain releases through
		m.Close()
	}()

	doomed, err := m.Acquire("doomed", 2*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	alive, err := m.Acquire("alive", time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second) // past doomed's TTL, within alive's

	sweepDone := make(chan int)
	go func() { sweepDone <- m.SweepOnce() }()

	// Wait until the sweep is inside the blocked namer.Release.
	select {
	case name := <-bn.released:
		if name != doomed.Name {
			t.Fatalf("sweep released name %d, want %d", name, doomed.Name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never reached namer.Release")
	}

	// The stripe must be free while Release blocks: renew, get and
	// release on the surviving lease all complete.
	opsDone := make(chan error, 1)
	go func() {
		if _, err := m.Renew(alive.Name, alive.Token, 0); err != nil {
			opsDone <- err
			return
		}
		if _, ok := m.Get(alive.Name); !ok {
			opsDone <- ErrUnknownName
			return
		}
		opsDone <- nil
	}()
	select {
	case err := <-opsDone:
		if err != nil {
			t.Fatalf("stripe operation failed during blocked reclaim: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stripe operations hung while namer.Release blocked: reclaim holds the stripe lock")
	}

	// The doomed lease must already be gone from the table (dropped under
	// the lock) even though the namer hand-back is still in flight.
	if _, ok := m.Get(doomed.Name); ok {
		t.Fatal("expired lease still visible during its namer hand-back")
	}

	bn.gate <- struct{}{} // release the parked namer.Release
	select {
	case n := <-sweepDone:
		if n != 1 {
			t.Fatalf("sweep reclaimed %d, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never finished after namer.Release unblocked")
	}
	if got := m.Metrics().Expired; got != 1 {
		t.Fatalf("Expired = %d, want 1", got)
	}
}

// TestLazyExpiryReleasesOutsideStripeLock covers the lazy reclaim paths
// (Renew/Release/Get on a lapsed lease) the same way: while the lapsed
// lease's hand-back blocks, its stripe keeps serving.
func TestLazyExpiryReleasesOutsideStripeLock(t *testing.T) {
	inner, err := renaming.NewLevelArray(8)
	if err != nil {
		t.Fatal(err)
	}
	bn := &blockingNamer{Namer: inner, released: make(chan int, 8), gate: make(chan struct{})}
	clk := newFakeClock()
	m, err := New(bn, Config{TTL: 10 * time.Second, SweepInterval: -1, Shards: 1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(bn.gate)
		m.Close()
	}()
	doomed, err := m.Acquire("doomed", 2*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	alive, err := m.Acquire("alive", time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)

	renewErr := make(chan error)
	go func() {
		_, err := m.Renew(doomed.Name, doomed.Token, 0) // lazy reclaim: ErrExpired + hand-back
		renewErr <- err
	}()
	select {
	case <-bn.released:
	case <-time.After(5 * time.Second):
		t.Fatal("lazy reclaim never reached namer.Release")
	}
	opsDone := make(chan error, 1)
	go func() {
		_, err := m.Renew(alive.Name, alive.Token, 0)
		opsDone <- err
	}()
	select {
	case err := <-opsDone:
		if err != nil {
			t.Fatalf("stripe renewal failed during blocked lazy reclaim: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stripe renewal hung while a lazy reclaim's namer.Release blocked")
	}
	bn.gate <- struct{}{}
	if err := <-renewErr; err != ErrExpired {
		t.Fatalf("lazy-reclaim Renew returned %v, want ErrExpired", err)
	}
}

// TestReclaimFailedAccountingPreserved pins that moving the hand-back
// outside the lock kept the ReclaimFailed accounting: a namer that
// refuses returned names is still counted, on both the sweep and batch
// paths.
func TestReclaimFailedAccountingPreserved(t *testing.T) {
	nm, err := renaming.NewMoirAnderson(8) // one-shot: every Release fails
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: 10 * time.Second, SweepInterval: -1, Shards: 1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Acquire("a", 2*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	b, err := m.Acquire("b", time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	if n := m.SweepOnce(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if got := m.Metrics().ReclaimFailed; got != 1 {
		t.Fatalf("ReclaimFailed = %d after sweep, want 1", got)
	}
	// Voluntary release through the batch path: the namer error is the
	// per-item outcome AND counts as a failed reclaim.
	results, err := m.ReleaseBatch(context.Background(), []ReleaseItem{{Name: b.Name, Token: b.Token}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("one-shot namer's Release error not propagated through ReleaseBatch")
	}
	if got := m.Metrics().ReclaimFailed; got != 2 {
		t.Fatalf("ReclaimFailed = %d after batch release, want 2", got)
	}
}
