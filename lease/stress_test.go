package lease

import (
	"errors"
	"sync"
	"testing"
	"time"

	renaming "repro"
)

// TestCapacityBoundaryStress hammers a MaxLive-capped manager with
// concurrent Acquire/Renew/Release/SweepOnce traffic pinned right at the
// capacity boundary (run it with -race). Holders take minute-long leases
// and verify exclusivity — no name may ever be assigned to two concurrent
// holders; abandoners take millisecond leases and walk away, so sweeps
// and capacity-pressure reclaims run constantly. Afterwards every
// invariant must have survived: the live count drains to zero, no namer
// slot leaked (the full capacity is re-acquirable), and no reclaim ever
// failed over the LevelArray.
func TestCapacityBoundaryStress(t *testing.T) {
	const (
		maxLive = 16
		workers = 8
		iters   = 300
	)
	nm, err := renaming.NewLevelArray(64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(nm, Config{TTL: time.Minute, SweepInterval: -1, MaxLive: maxLive})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var heldMu sync.Mutex
	held := make(map[int]uint64) // name -> token, for long-TTL holders only

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (id + i) % 4 {
				case 0, 1: // hold exclusively, renew, release
					l, err := m.Acquire("holder", time.Minute, nil)
					if errors.Is(err, ErrCapacity) {
						continue // legitimately full of live holders
					}
					if err != nil {
						t.Errorf("holder acquire: %v", err)
						return
					}
					heldMu.Lock()
					if tok, dup := held[l.Name]; dup {
						t.Errorf("name %d double-assigned (tokens %d and %d)", l.Name, tok, l.Token)
					}
					held[l.Name] = l.Token
					heldMu.Unlock()
					if _, err := m.Renew(l.Name, l.Token, time.Minute); err != nil {
						t.Errorf("renew held lease: %v", err)
					}
					// Drop the tracking entry before Release: the manager
					// can only re-assign the name after Release returns.
					heldMu.Lock()
					delete(held, l.Name)
					heldMu.Unlock()
					if err := m.Release(l.Name, l.Token); err != nil {
						t.Errorf("release held lease: %v", err)
					}
				case 2: // abandon: a crashed client whose lease must lapse
					l, err := m.Acquire("abandoner", time.Millisecond, nil)
					if errors.Is(err, ErrCapacity) {
						continue
					}
					if err != nil {
						t.Errorf("abandoner acquire: %v", err)
						return
					}
					_ = l // never renewed, never released
				case 3: // reclaim pressure + read traffic
					m.SweepOnce()
					m.Leases()
				}
			}
		}(w)
	}
	wg.Wait()

	// Drain: abandoned leases expire within milliseconds; sweep until the
	// internal live count matches the holders the storm left behind.
	heldMu.Lock()
	remaining := int64(len(held))
	heldMu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for m.live.Load() != remaining {
		if time.Now().After(deadline) {
			t.Fatalf("live count stuck at %d, want %d (leaked reservation or lost reclaim)",
				m.live.Load(), remaining)
		}
		m.SweepOnce()
		time.Sleep(time.Millisecond)
	}

	for name, tok := range held {
		if err := m.Release(name, tok); err != nil {
			t.Errorf("post-storm release of %d: %v", name, err)
		}
	}
	if n := m.live.Load(); n != 0 {
		t.Errorf("live count = %d after full drain, want 0", n)
	}
	if mt := m.Metrics(); mt.Live != 0 || mt.ReclaimFailed != 0 {
		t.Errorf("post-drain metrics = %+v, want Live 0 and no failed reclaims", mt)
	}
	// No namer slot may have leaked: the full capacity is re-acquirable.
	for i := 0; i < maxLive; i++ {
		if _, err := m.Acquire("final", time.Minute, nil); err != nil {
			t.Fatalf("slot leak: re-acquire %d/%d: %v", i+1, maxLive, err)
		}
	}
}
