package lease

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	renaming "repro"
)

// newBenchManager builds a manager over a LevelArray with the given shard
// count (0 = the GOMAXPROCS default, 1 = the pre-sharding single-mutex
// layout) and capacity headroom so the namer never rejects.
func newBenchManager(b *testing.B, shards int) *Manager {
	b.Helper()
	nm, err := renaming.NewLevelArray(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(nm, Config{TTL: time.Minute, SweepInterval: -1, MaxLive: 1 << 12, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { m.Close() })
	return m
}

func benchAcquireRelease(b *testing.B, shards int) {
	m := newBenchManager(b, shards)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l, err := m.Acquire("bench", 0, nil)
			if err != nil {
				b.Error(err)
				return
			}
			if err := m.Release(l.Name, l.Token); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkAcquireRelease is the acceptance benchmark for the sharded
// manager: run with GOMAXPROCS=8 and compare singleMutex (Shards: 1, the
// pre-sharding layout) against sharded (the default stripe count).
// EXPERIMENTS.md F8 records the measured ratio.
func BenchmarkAcquireRelease(b *testing.B) {
	b.Run("singleMutex", func(b *testing.B) { benchAcquireRelease(b, 1) })
	b.Run("sharded", func(b *testing.B) { benchAcquireRelease(b, 0) })
}

func benchRenew(b *testing.B, shards int) {
	m := newBenchManager(b, shards)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		l, err := m.Acquire("bench", 0, nil)
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			if _, err := m.Renew(l.Name, l.Token, 0); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkRenew(b *testing.B) {
	b.Run("singleMutex", func(b *testing.B) { benchRenew(b, 1) })
	b.Run("sharded", func(b *testing.B) { benchRenew(b, 0) })
}

// newStandingLeases builds a manager with `standing` long-lived leases
// already held — the renewal hot path's real shape: a large stable holder
// population heartbeating, not a churn of fresh names.
func newStandingLeases(b *testing.B, standing int) (*Manager, []RenewItem) {
	b.Helper()
	nm, err := renaming.NewLevelArray(standing)
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(nm, Config{TTL: time.Hour, SweepInterval: -1, MaxLive: standing})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { m.Close() })
	leases, err := m.AcquireBatch(context.Background(), "bench", standing, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	items := make([]RenewItem, len(leases))
	for i, l := range leases {
		items[i] = RenewItem{Name: l.Name, Token: l.Token}
	}
	return m, items
}

// BenchmarkRenewBatch is the acceptance benchmark for the batched renew
// path: at 2^16 standing leases, ns/op is per RENEWAL in every variant
// (the batch variants renew len(chunk) leases per call and advance the
// counter accordingly), so "single" vs "batchK" reads directly as the
// per-lease saving from amortizing lock visits, the clock read and the
// counter updates across a heartbeat batch.
func BenchmarkRenewBatch(b *testing.B) {
	const standing = 1 << 16
	b.Run("single", func(b *testing.B) {
		m, items := newStandingLeases(b, standing)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it := items[i%standing]
			if _, err := m.Renew(it.Name, it.Token, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, k := range []int{64, 512} {
		b.Run(fmt.Sprintf("batch%d", k), func(b *testing.B) {
			m, items := newStandingLeases(b, standing)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				start := done % standing
				end := start + k
				if end > standing {
					end = standing
				}
				chunk := items[start:end]
				results, err := m.RenewBatch(ctx, chunk, 0)
				if err != nil {
					b.Fatal(err)
				}
				for i := range results {
					if results[i].Err != nil {
						b.Fatal(results[i].Err)
					}
				}
				done += len(chunk)
			}
		})
	}
}

// BenchmarkSweepOnce measures an idle sweep over a fully live table: the
// heap design makes it O(shards) peeks, independent of the live count.
func BenchmarkSweepOnce(b *testing.B) {
	m := newBenchManager(b, 0)
	for i := 0; i < 1<<10; i++ {
		if _, err := m.Acquire("bench", time.Hour, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SweepOnce()
	}
}

// baselineManager is a faithful replica of the pre-sharding lease manager:
// one mutex over one map, a full-table scan on every sweep, and the old
// Acquire's unlock/grant/recheck dance. It is kept (stripped to the ops
// the benchmarks drive) so this PR's redesign can be measured against the
// design it replaced.
type baselineManager struct {
	namer renaming.Namer

	mu     sync.Mutex
	leases map[int]Lease
	token  uint64

	ttl     time.Duration
	maxLive int

	done chan struct{}
	wg   sync.WaitGroup
}

func newBaselineManager(namer renaming.Namer, ttl, sweepInterval time.Duration, maxLive int) *baselineManager {
	bm := &baselineManager{
		namer:   namer,
		leases:  make(map[int]Lease),
		ttl:     ttl,
		maxLive: maxLive,
		done:    make(chan struct{}),
	}
	if sweepInterval > 0 {
		bm.wg.Add(1)
		go func() {
			defer bm.wg.Done()
			ticker := time.NewTicker(sweepInterval)
			defer ticker.Stop()
			for {
				select {
				case <-bm.done:
					return
				case <-ticker.C:
					now := time.Now()
					bm.mu.Lock()
					bm.sweepLocked(now)
					bm.mu.Unlock()
				}
			}
		}()
	}
	return bm
}

// sweepLocked is the old O(live) reclamation: every sweep scans the whole
// table under the same mutex every operation needs.
func (bm *baselineManager) sweepLocked(now time.Time) {
	for name, l := range bm.leases {
		if now.After(l.ExpiresAt) {
			delete(bm.leases, name)
			bm.namer.Release(name)
		}
	}
}

func (bm *baselineManager) Acquire(ttl time.Duration) (int, uint64, error) {
	bm.mu.Lock()
	if bm.maxLive > 0 && len(bm.leases) >= bm.maxLive {
		bm.sweepLocked(time.Now())
		if len(bm.leases) >= bm.maxLive {
			bm.mu.Unlock()
			return 0, 0, ErrCapacity
		}
	}
	bm.mu.Unlock()
	name, err := bm.namer.GetName()
	if err != nil {
		return 0, 0, err
	}
	expires := time.Now().Add(ttl)
	bm.mu.Lock()
	if bm.maxLive > 0 && len(bm.leases) >= bm.maxLive {
		bm.mu.Unlock()
		bm.namer.Release(name)
		return 0, 0, ErrCapacity
	}
	bm.token++
	tok := bm.token
	bm.leases[name] = Lease{Name: name, Token: tok, ExpiresAt: expires}
	bm.mu.Unlock()
	return name, tok, nil
}

func (bm *baselineManager) Release(name int, token uint64) error {
	bm.mu.Lock()
	l, ok := bm.leases[name]
	if !ok || l.Token != token {
		bm.mu.Unlock()
		return ErrUnknownName
	}
	delete(bm.leases, name)
	bm.mu.Unlock()
	return bm.namer.Release(name)
}

func (bm *baselineManager) Close() {
	close(bm.done)
	bm.wg.Wait()
}

// BenchmarkServiceScale is the acceptance comparison: acquire+release
// throughput at service scale — a standing population of long-lived
// holders with the reclamation sweeper running at the cadence a short-TTL
// lease class dictates (the package default is TTL/4; heartbeat leases of
// tens of milliseconds put that at single-digit milliseconds). The
// pre-sharding baseline rescans every live lease under its one mutex on
// every tick, so the sweep — not the namer — throttles the hot path; the
// sharded manager's heap sweeps are O(expired) and its stripes keep ops
// out of the sweeper's way.
func BenchmarkServiceScale(b *testing.B) {
	const (
		capacity   = 1 << 21
		pinned     = 1 << 20
		sweepEvery = 5 * time.Millisecond
	)
	b.Run("singleMutexBaseline", func(b *testing.B) {
		nm, err := renaming.NewLevelArray(capacity)
		if err != nil {
			b.Fatal(err)
		}
		bm := newBaselineManager(nm, time.Hour, sweepEvery, capacity)
		defer bm.Close()
		for i := 0; i < pinned; i++ {
			if _, _, err := bm.Acquire(time.Hour); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				name, tok, err := bm.Acquire(time.Minute)
				if err != nil {
					b.Error(err)
					return
				}
				if err := bm.Release(name, tok); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("sharded", func(b *testing.B) {
		nm, err := renaming.NewLevelArray(capacity)
		if err != nil {
			b.Fatal(err)
		}
		m, err := New(nm, Config{TTL: time.Hour, SweepInterval: sweepEvery, MaxLive: capacity})
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		for i := 0; i < pinned; i++ {
			if _, err := m.Acquire("pin", time.Hour, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				l, err := m.Acquire("bench", time.Minute, nil)
				if err != nil {
					b.Error(err)
					return
				}
				if err := m.Release(l.Name, l.Token); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}
