// snapshot.go is the compaction half of the durability layer: a snapshot
// file is the whole lease table (plus the fencing-token watermark) written
// at one instant, after which the journal restarts empty — recovery cost
// becomes O(live + records-since-snapshot) instead of O(every record
// ever).
//
// Format: an 8-byte magic, one header frame (token watermark, lease
// count), then one frame per lease, all using the journal's CRC framing.
// The file is replaced atomically — written to a temp name, fsynced,
// renamed over the old snapshot, directory fsynced — so a crash mid-
// compaction leaves the previous snapshot intact. Unlike the journal, a
// snapshot that fails validation is a hard error, not a truncation: the
// rename either happened or it didn't, so a half-valid snapshot means
// real corruption and silently dropping its tail would resurrect stale
// leases.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/lease"
)

const snapshotMagic = "RLRNSNP1"

// writeSnapshot atomically replaces dir's snapshot with the given table
// state. The map must be private to the caller (a clone, or the mirror
// of a store with no concurrency) — it is read without locking.
func writeSnapshot(dir string, mirror map[int]lease.Lease, maxToken uint64) error {
	tmp := filepath.Join(dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	// Frames stream through a buffered writer — at a million live leases
	// the snapshot is tens of MB, and building it as one []byte would
	// transiently double the memory the mirror clone already costs.
	w := bufio.NewWriter(f)
	_, werr := w.WriteString(snapshotMagic)
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, maxToken)
	hdr = binary.AppendUvarint(hdr, uint64(len(mirror)))
	frame := appendFrame(nil, hdr)
	if werr == nil {
		_, werr = w.Write(frame)
	}
	var payload []byte
	for _, l := range mirror {
		if werr != nil {
			break
		}
		payload = appendPayload(payload[:0], recordFromLease(l))
		frame = appendFrame(frame[:0], payload)
		_, werr = w.Write(frame)
	}
	if werr == nil {
		werr = w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: snapshot: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	return syncDir(dir)
}

// loadSnapshot reads dir's snapshot into a fresh mirror. A missing file
// is an empty state; a present-but-invalid file is an error.
func loadSnapshot(dir string) (mirror map[int]lease.Lease, maxToken uint64, err error) {
	buf, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return map[int]lease.Lease{}, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("persist: snapshot: %w", err)
	}
	if len(buf) < len(snapshotMagic) || string(buf[:len(snapshotMagic)]) != snapshotMagic {
		return nil, 0, errors.New("persist: snapshot: bad magic")
	}
	rest := buf[len(snapshotMagic):]
	hdr, err := nextSnapshotFrame(&rest)
	if err != nil {
		return nil, 0, err
	}
	c := &cursor{b: hdr}
	maxToken = c.uvarint("token watermark")
	count := c.uvarint("lease count")
	if c.err != nil {
		return nil, 0, fmt.Errorf("persist: snapshot header: %w", c.err)
	}
	mirror = make(map[int]lease.Lease, count)
	for i := uint64(0); i < count; i++ {
		payload, err := nextSnapshotFrame(&rest)
		if err != nil {
			return nil, 0, fmt.Errorf("persist: snapshot lease %d/%d: %w", i, count, err)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return nil, 0, fmt.Errorf("persist: snapshot lease %d/%d: %w", i, count, err)
		}
		if rec.op != opAcquire {
			return nil, 0, fmt.Errorf("persist: snapshot lease %d/%d: op %d", i, count, rec.op)
		}
		mirror[rec.name] = leaseFromRecord(rec)
	}
	return mirror, maxToken, nil
}

// nextSnapshotFrame pops one CRC-checked frame payload off *rest.
func nextSnapshotFrame(rest *[]byte) ([]byte, error) {
	b := *rest
	if len(b) < 8 {
		return nil, io.ErrUnexpectedEOF
	}
	length := int(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint32(b[4:])
	if length > maxFrame || len(b)-8 < length {
		return nil, io.ErrUnexpectedEOF
	}
	payload := b[8 : 8+length]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errors.New("persist: snapshot frame CRC mismatch")
	}
	*rest = b[8+length:]
	return payload, nil
}

// leaseFromRecord rebuilds the in-memory lease an opAcquire record (or a
// snapshot lease frame) describes.
func leaseFromRecord(r record) lease.Lease {
	return lease.Lease{
		Name:      r.name,
		Token:     r.token,
		Owner:     r.owner,
		ExpiresAt: time.Unix(0, r.expiresAt),
		Meta:      r.meta,
	}
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable — the half of atomic replacement that os.Rename alone skips.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("persist: sync dir: %w", err)
	}
	return nil
}
