package persist

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	renaming "repro"
	"repro/lease"
)

// fakeClock mirrors the lease package's test clock: manual time so
// expiry across "restarts" is deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// bootManager builds a journaled manager over a fresh LevelArray namer,
// restores the store's recovered state into it, and returns both.
func bootManager(t *testing.T, dir string, clk *fakeClock) (*lease.Manager, *Store, int, int) {
	t.Helper()
	st, err := Open(dir, Options{Fsync: FsyncAlways, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	nm, err := renaming.NewLevelArray(64)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := lease.New(nm, lease.Config{
		TTL:           10 * time.Second,
		SweepInterval: -1,
		Observer:      st,
		Now:           clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	restored, expired, err := mgr.Restore(st.State())
	if err != nil {
		t.Fatal(err)
	}
	return mgr, st, restored, expired
}

// TestRestartRoundTrip is the crash-recovery acceptance test at the
// library level: acquire and renew under journaling, crash without any
// snapshot, reboot from the same directory, and assert that every
// unexpired lease came back with its token, that the restored tokens
// keep renewing, and that fencing tokens stay monotonic across the
// restart.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()

	mgr1, _, restored, expired := bootManager(t, dir, clk)
	if restored != 0 || expired != 0 {
		t.Fatalf("fresh boot restored %d / expired %d, want 0/0", restored, expired)
	}
	short, err := mgr1.Acquire("doomed", 2*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	var held []lease.Lease
	var maxToken uint64
	for i := 0; i < 8; i++ {
		l, err := mgr1.Acquire("survivor", 0, map[string]string{"i": "x"})
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, l)
		if l.Token > maxToken {
			maxToken = l.Token
		}
	}
	// Renew one lease so its replayed expiry is the extended one.
	clk.Advance(1 * time.Second)
	renewed, err := mgr1.Renew(held[0].Name, held[0].Token, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Crash: no mgr1.Close() (that would release every name), no store
	// snapshot — the journal alone carries the state.
	// (mgr1 is simply abandoned, like a killed process.)

	clk.Advance(3 * time.Second) // "downtime": past short's TTL, within the others'

	mgr2, st2, restored2, expired2 := bootManager(t, dir, clk)
	defer mgr2.Close()
	defer st2.Close()
	if restored2 != len(held) || expired2 != 1 {
		t.Fatalf("reboot restored %d / expired %d, want %d / 1", restored2, expired2, len(held))
	}
	if _, ok := mgr2.Get(short.Name); ok {
		t.Fatal("lease that lapsed during downtime came back alive")
	}
	for _, l := range held {
		got, ok := mgr2.Get(l.Name)
		if !ok {
			t.Fatalf("lease on name %d not restored", l.Name)
		}
		if got.Token != l.Token {
			t.Fatalf("name %d restored with token %d, want %d", l.Name, got.Token, l.Token)
		}
		if got.Owner != "survivor" || got.Meta["i"] != "x" {
			t.Fatalf("name %d lost owner/meta: %+v", l.Name, got)
		}
	}
	if got, _ := mgr2.Get(held[0].Name); !got.ExpiresAt.Equal(renewed.ExpiresAt) {
		t.Fatalf("renewed expiry not replayed: %v, want %v", got.ExpiresAt, renewed.ExpiresAt)
	}

	// Restored tokens keep renewing — the heartbeat of a client that
	// never noticed the crash.
	for _, l := range held {
		if _, err := mgr2.Renew(l.Name, l.Token, 0); err != nil {
			t.Fatalf("restored token for name %d refused renewal: %v", l.Name, err)
		}
	}

	// Token monotonicity: everything minted post-restart outranks
	// everything minted pre-crash (including the expired lease's token).
	fresh, err := mgr2.Acquire("post-crash", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if short.Token > maxToken {
		maxToken = short.Token
	}
	if fresh.Token <= maxToken {
		t.Fatalf("post-restart token %d not above pre-crash watermark %d", fresh.Token, maxToken)
	}

	// The adopted names are really held in the fresh namer: a released
	// restored name is re-acquirable, and no fresh acquire collided with
	// a restored one (Get above proved each restored name had its lease).
	if err := mgr2.Release(held[1].Name, held[1].Token); err != nil {
		t.Fatal(err)
	}
}

// TestRestartAfterGracefulShutdown pins the Shutdown/Close split: a
// graceful shutdown must preserve the table for the next boot rather
// than draining it.
func TestRestartAfterGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	mgr1, st1, _, _ := bootManager(t, dir, clk)
	l, err := mgr1.Acquire("w", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	mgr2, st2, restored, _ := bootManager(t, dir, clk)
	defer mgr2.Close()
	defer st2.Close()
	if restored != 1 {
		t.Fatalf("restored %d leases after graceful shutdown, want 1", restored)
	}
	if _, err := mgr2.Renew(l.Name, l.Token, 0); err != nil {
		t.Fatalf("restored token refused renewal: %v", err)
	}
	// And the recovery replayed zero journal records: the shutdown
	// snapshot covered everything.
	if got := st2.Stats().ReplayedRecords; got != 0 {
		t.Fatalf("replayed %d records after graceful shutdown, want 0", got)
	}
}

// TestCloseDrainsDurableState pins the other half of the split: a
// terminal Close releases every lease, and the durable state agrees —
// the next boot restores nothing.
func TestCloseDrainsDurableState(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	mgr1, st1, _, _ := bootManager(t, dir, clk)
	if _, err := mgr1.Acquire("w", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	mgr2, st2, restored, expired := bootManager(t, dir, clk)
	defer mgr2.Close()
	defer st2.Close()
	if restored != 0 || expired != 0 {
		t.Fatalf("boot after terminal Close restored %d / expired %d, want 0/0", restored, expired)
	}
}

// TestRestoreRejectsUsedManager pins that Restore demands a fresh
// manager: grants before Restore would violate the token watermark.
func TestRestoreRejectsUsedManager(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	mgr, st, _, _ := bootManager(t, dir, clk)
	defer mgr.Close()
	defer st.Close()
	if _, err := mgr.Acquire("w", 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.Restore(st.State()); err == nil {
		t.Fatal("Restore accepted a manager that already granted leases")
	}
}

// TestRestoreRequiresAdopter pins the failure mode for namers that
// cannot re-seize names.
func TestRestoreRequiresAdopter(t *testing.T) {
	nm, err := renaming.NewLevelArray(8)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := lease.New(nm, lease.Config{SweepInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	_, _, rerr := mgr.Restore(lease.RestoreState{Leases: []lease.Lease{{Name: 1, Token: 1, ExpiresAt: time.Now().Add(time.Hour)}}})
	if rerr != nil {
		t.Fatalf("LevelArray namer should adopt: %v", rerr)
	}
	// A namer without Adopt must be refused when leases need restoring.
	var bare bareNamer
	mgr2, err := lease.New(&bare, lease.Config{SweepInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	_, _, rerr = mgr2.Restore(lease.RestoreState{Leases: []lease.Lease{{Name: 1, Token: 1, ExpiresAt: time.Now().Add(time.Hour)}}})
	if rerr == nil {
		t.Fatal("Restore accepted a namer with no Adopt method")
	}
}

// bareNamer is a Namer without Adopt.
type bareNamer struct{}

func (bareNamer) Acquire(ctx context.Context) (int, error)           { return 0, errors.New("no") }
func (bareNamer) AcquireN(ctx context.Context, k int) ([]int, error) { return nil, errors.New("no") }
func (bareNamer) GetName() (int, error)                              { return 0, errors.New("no") }
func (bareNamer) Namespace() int                                     { return 8 }
func (bareNamer) Release(name int) error                             { return nil }
