package persist

import (
	"os"
	"path/filepath"
	"testing"

	"repro/lease"
)

// buildTornFixture writes a journal of n acquire records (fsync always,
// then crash) and returns the raw journal bytes plus the byte offset
// where the last record's frame begins.
func buildTornFixture(t *testing.T, dir string, n int) (buf []byte, lastStart int64) {
	t.Helper()
	s := openAlways(t, dir)
	for i := 0; i < n; i++ {
		s.ObserveAcquire(lease.Lease{
			Name: i, Token: uint64(i + 1), Owner: "torn", ExpiresAt: at(int64(100 + i)),
			Meta: map[string]string{"k": "v"},
		})
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	body := buf[len(journalMagic):]
	count := 0
	valid, _ := scanFrames(body, func(record) { count++ })
	if count != n || valid != int64(len(body)) {
		t.Fatalf("fixture journal holds %d records over %d bytes, want %d over %d", count, valid, n, len(body))
	}
	// Walk the frame headers to find where the last record begins.
	cur := int64(0)
	for i := 0; i < n-1; i++ {
		length := int64(uint32(body[cur]) | uint32(body[cur+1])<<8 | uint32(body[cur+2])<<16 | uint32(body[cur+3])<<24)
		cur += 8 + length
	}
	return buf, int64(len(journalMagic)) + cur
}

// TestTornTailEveryByteOffset is the recovery property test the issue
// demands: for EVERY byte length that cuts the journal somewhere inside
// its last record — from the record's first header byte up to one byte
// short of its end — replay must recover exactly the longest valid
// prefix (the first n-1 records), truncate the torn tail, and leave the
// journal appendable.
func TestTornTailEveryByteOffset(t *testing.T) {
	const n = 6
	fixtureDir := t.TempDir()
	buf, lastStart := buildTornFixture(t, fixtureDir, n)

	wantPrefix := map[int]uint64{}
	for i := 0; i < n-1; i++ {
		wantPrefix[i] = uint64(i + 1)
	}

	for cut := lastStart; cut < int64(len(buf)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), buf[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{Fsync: FsyncAlways, CompactEvery: -1})
		if err != nil {
			t.Fatalf("cut at %d/%d bytes: Open: %v", cut, len(buf), err)
		}
		st := s.State()
		if len(st.Leases) != n-1 {
			t.Fatalf("cut at %d/%d bytes: recovered %d leases, want %d", cut, len(buf), len(st.Leases), n-1)
		}
		for _, l := range st.Leases {
			if wantPrefix[l.Name] != l.Token {
				t.Fatalf("cut at %d: name %d token %d, want %d", cut, l.Name, l.Token, wantPrefix[l.Name])
			}
		}
		if stats := s.Stats(); stats.TruncatedBytes != cut-lastStart {
			t.Fatalf("cut at %d: truncated %d bytes, want %d", cut, stats.TruncatedBytes, cut-lastStart)
		}
		// The journal must be appendable again after truncation: a fresh
		// record lands and survives another crash.
		s.ObserveAcquire(lease.Lease{Name: 100, Token: 1000, ExpiresAt: at(500)})
		if err := s.Crash(); err != nil {
			t.Fatal(err)
		}
		r := openAlways(t, dir)
		got := r.State()
		if len(got.Leases) != n || got.Token != 1000 {
			t.Fatalf("cut at %d: post-truncation append lost (%d leases, watermark %d)", cut, len(got.Leases), got.Token)
		}
		r.Close()
	}
}

// TestTornTailBitFlip pins that a CRC-invalid (not just short) tail is
// also dropped: flip each byte of the last record in turn.
func TestTornTailBitFlip(t *testing.T) {
	const n = 4
	fixtureDir := t.TempDir()
	buf, lastStart := buildTornFixture(t, fixtureDir, n)

	for pos := lastStart; pos < int64(len(buf)); pos++ {
		dir := t.TempDir()
		corrupt := append([]byte(nil), buf...)
		corrupt[pos] ^= 0x5a
		if err := os.WriteFile(filepath.Join(dir, journalName), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{Fsync: FsyncAlways, CompactEvery: -1})
		if err != nil {
			t.Fatalf("flip at %d: Open: %v", pos, err)
		}
		if got := len(s.State().Leases); got != n-1 {
			t.Fatalf("flip at %d: recovered %d leases, want %d", pos, got, n-1)
		}
		s.Close()
	}
}

// TestShortMagicReinitializes pins the edge where the crash tore the
// 8-byte magic itself: the journal is reinitialized empty rather than
// rejected.
func TestShortMagicReinitializes(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(journalMagic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{Fsync: FsyncAlways, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := len(s.State().Leases); got != 0 {
		t.Fatalf("recovered %d leases from a torn-magic journal, want 0", got)
	}
}

// TestForeignMagicRejected pins that a file that is confidently NOT ours
// (full-length, wrong magic) is a hard error, not silent reuse.
func TestForeignMagicRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte("NOTOURS1 something"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a foreign journal file")
	}
}
