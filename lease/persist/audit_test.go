package persist

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"

	"repro/lease"
)

// dirDigest hashes every file in dir (name + contents) so tests can
// assert the audit touched nothing.
func dirDigest(t *testing.T, dir string) [sha256.Size]byte {
	t.Helper()
	h := sha256.New()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte(e.Name()))
		h.Write(buf)
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

func TestAuditMatchesRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	s.ObserveAcquire(lease.Lease{Name: 1, Token: 10, Owner: "w1", ExpiresAt: at(100)})
	s.ObserveAcquire(lease.Lease{Name: 2, Token: 11, Owner: "w2", ExpiresAt: at(100)})
	s.ObserveAcquire(lease.Lease{Name: 3, Token: 12, Owner: "w3", ExpiresAt: at(100)})
	s.ObserveRenew(1, 10, at(200))
	s.ObserveRelease(2, 11)
	s.ObserveExpire(3, 12)
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}

	before := dirDigest(t, dir)
	a, err := ReadAudit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after := dirDigest(t, dir); after != before {
		t.Fatal("ReadAudit modified the data directory")
	}

	if len(a.Regressions) != 0 {
		t.Fatalf("healthy history reported regressions: %v", a.Regressions)
	}
	if a.TornBytes != 0 {
		t.Fatalf("fsync-always journal reported %d torn bytes", a.TornBytes)
	}
	if a.JournalRecords != 6 {
		t.Fatalf("audit counted %d journal records, want 6", a.JournalRecords)
	}
	if a.MaxToken != 12 {
		t.Fatalf("audit watermark %d, want 12 (highest ever seen)", a.MaxToken)
	}
	if len(a.Leases) != 1 || a.Leases[0].Name != 1 || a.Leases[0].Token != 10 {
		t.Fatalf("audit live set = %+v, want exactly {name 1, token 10}", a.Leases)
	}
	if !a.Leases[0].ExpiresAt.Equal(at(200)) {
		t.Fatalf("audit missed the renew: expiry %v, want %v", a.Leases[0].ExpiresAt, at(200))
	}

	// The audit's view must equal what a real recovery restores.
	r := openAlways(t, dir)
	defer r.Close()
	st := r.State()
	if len(st.Leases) != len(a.Leases) || st.Token != a.MaxToken {
		t.Fatalf("audit (%d leases, token %d) disagrees with recovery (%d leases, token %d)",
			len(a.Leases), a.MaxToken, len(st.Leases), st.Token)
	}
}

func TestAuditAfterGracefulCloseSeesSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	for i := 0; i < 8; i++ {
		s.ObserveAcquire(lease.Lease{Name: i, Token: uint64(i + 1), ExpiresAt: at(100)})
	}
	s.ObserveRelease(3, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := ReadAudit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.SnapshotLeases != 7 {
		t.Fatalf("snapshot carried %d leases, want 7", a.SnapshotLeases)
	}
	if a.JournalRecords != 0 || a.PrevRecords != 0 {
		t.Fatalf("graceful close left journal records behind: journal=%d prev=%d",
			a.JournalRecords, a.PrevRecords)
	}
	if a.TornBytes != 0 {
		t.Fatalf("graceful close left %d torn bytes", a.TornBytes)
	}
	if a.MaxToken != 8 {
		t.Fatalf("watermark %d, want 8", a.MaxToken)
	}
	if len(a.Leases) != 7 {
		t.Fatalf("live set %d leases, want 7", len(a.Leases))
	}
}

func TestAuditReportsTornTailWithoutTruncating(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	s.ObserveAcquire(lease.Lease{Name: 1, Token: 1, ExpiresAt: at(100)})
	s.ObserveAcquire(lease.Lease{Name: 2, Token: 2, ExpiresAt: at(100)})
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}

	// Tear the journal mid-frame: append garbage that scans as an invalid
	// tail.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	a, err := ReadAudit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.TornBytes != int64(len(torn)) {
		t.Fatalf("audit reported %d torn bytes, want %d", a.TornBytes, len(torn))
	}
	if a.JournalRecords != 2 || len(a.Leases) != 2 {
		t.Fatalf("valid prefix misread: %d records, %d leases", a.JournalRecords, len(a.Leases))
	}
	sizeAfter, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if sizeAfter.Size() != sizeBefore.Size() {
		t.Fatalf("audit truncated the journal: %d -> %d bytes", sizeBefore.Size(), sizeAfter.Size())
	}
}

func TestAuditFlagsTokenRegression(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	s.ObserveAcquire(lease.Lease{Name: 5, Token: 9, ExpiresAt: at(100)})
	s.ObserveRelease(5, 9)
	// A fencing bug: the name re-acquired with a token that moved BACKWARD.
	// The store's own mirror tolerates it (release emptied the slot), so
	// only the audit's order check can see it.
	s.ObserveAcquire(lease.Lease{Name: 5, Token: 3, ExpiresAt: at(200)})
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}

	a, err := ReadAudit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Regressions) != 1 {
		t.Fatalf("want exactly 1 regression, got %v", a.Regressions)
	}
	r := a.Regressions[0]
	if r.Name != 5 || r.PrevToken != 9 || r.Token != 3 {
		t.Fatalf("regression misattributed: %+v", r)
	}
	if r.Source != journalName {
		t.Fatalf("regression source %q, want %q", r.Source, journalName)
	}
}

func TestAuditSpansSnapshotAndBothJournals(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	s.ObserveAcquire(lease.Lease{Name: 1, Token: 1, ExpiresAt: at(100)})
	s.ObserveAcquire(lease.Lease{Name: 2, Token: 2, ExpiresAt: at(100)})
	// Snapshot covering both leases while the journal keeps its records —
	// the keep-journal compaction path.
	if err := s.compactKeepJournal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	// Rotate by hand into the mid-compaction crash window: the surviving
	// journal becomes journal.wal.prev and a fresh active journal carries
	// one newer record — the exact three-layer layout the audit must read
	// through in replay order.
	if err := os.Rename(filepath.Join(dir, journalName), filepath.Join(dir, journalPrevName)); err != nil {
		t.Fatal(err)
	}
	buf := []byte(journalMagic)
	buf = appendFrame(buf, appendPayload(nil,
		recordFromLease(lease.Lease{Name: 3, Token: 3, ExpiresAt: at(100)})))
	if err := os.WriteFile(filepath.Join(dir, journalName), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	a, err := ReadAudit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.SnapshotLeases != 2 {
		t.Fatalf("snapshot leases %d, want 2", a.SnapshotLeases)
	}
	if a.PrevRecords != 2 {
		t.Fatalf("prev journal records %d, want 2", a.PrevRecords)
	}
	if a.JournalRecords != 1 {
		t.Fatalf("active journal records %d, want 1", a.JournalRecords)
	}
	if len(a.Leases) != 3 || a.MaxToken != 3 {
		t.Fatalf("folded state: %d leases, watermark %d; want 3 and 3", len(a.Leases), a.MaxToken)
	}
	// The prev journal's records duplicate the snapshot's leases (same
	// tokens); the audit must treat equal-token re-acquires from an OLDER
	// layer as the idempotent replay they are, not as regressions...
	for _, r := range a.Regressions {
		t.Errorf("idempotent replay flagged as regression: %v", r)
	}
}

func TestAuditEmptyAndMissingDir(t *testing.T) {
	a, err := ReadAudit(filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Leases) != 0 || a.MaxToken != 0 || a.TornBytes != 0 {
		t.Fatalf("missing dir audit not empty: %+v", a)
	}
}
