// journal.go is the byte-level half of the durability layer: the record
// vocabulary (acquire/renew/release/expire), the CRC-framed encoding, and
// the replay loop with torn-tail truncation.
//
// The journal is an append-only sequence of frames after an 8-byte magic:
//
//	[4B payload length, LE] [4B CRC-32 (IEEE) of payload] [payload]
//
// A crash can tear the tail of the file mid-frame (length header cut
// short, payload cut short, or a payload whose CRC no longer matches the
// header written moments earlier). Replay recovers the longest valid
// prefix: it applies frames until the first one that fails any check and
// truncates the file there, so the journal is again well-formed for
// appending. Everything before the torn frame was fully written and CRC-
// verified; everything after it is unreachable garbage by construction
// (frames are written with a single buffered write each, in order).
//
// Records are identified by (name, token): the fencing token makes replay
// idempotent and order-tolerant across names — a release or expire only
// deletes the mirror entry whose token it was minted for, so replaying a
// stale prefix over a newer snapshot cannot resurrect or kill the wrong
// lease.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/lease"
)

// journalMagic identifies a journal file; the trailing digit is the
// format version.
const journalMagic = "RLRNJNL1"

// maxFrame is the sanity cap on a single frame's payload length. A torn
// or corrupt length header could otherwise claim a multi-gigabyte frame
// and stall replay; no legitimate record (op + varints + a 1 MiB-capped
// HTTP request's owner/meta) approaches it.
const maxFrame = 1 << 24

// op is a journal record type.
type op byte

const (
	opAcquire op = 1 // full lease: name, token, expiry, owner, meta
	opRenew   op = 2 // name, token, new expiry
	opRelease op = 3 // name, token — voluntary hand-back
	opExpire  op = 4 // name, token — TTL lapse reclaimed
)

// record is one journal entry. expiresAt (UnixNano) is meaningful for
// opAcquire and opRenew; owner and meta only for opAcquire.
type record struct {
	op        op
	name      int
	token     uint64
	expiresAt int64
	owner     string
	meta      map[string]string
}

// recordFromLease builds the opAcquire record for l. The meta map is
// referenced, not copied: the manager never mutates a granted lease's
// meta in place, and the record is encoded before the observer returns.
func recordFromLease(l lease.Lease) record {
	return record{
		op:        opAcquire,
		name:      l.Name,
		token:     l.Token,
		expiresAt: l.ExpiresAt.UnixNano(),
		owner:     l.Owner,
		meta:      l.Meta,
	}
}

// appendPayload appends r's payload encoding (everything inside the
// frame) to b and returns the extended slice.
func appendPayload(b []byte, r record) []byte {
	b = append(b, byte(r.op))
	b = binary.AppendUvarint(b, uint64(r.name))
	b = binary.AppendUvarint(b, r.token)
	switch r.op {
	case opAcquire:
		b = binary.AppendVarint(b, r.expiresAt)
		b = binary.AppendUvarint(b, uint64(len(r.owner)))
		b = append(b, r.owner...)
		b = binary.AppendUvarint(b, uint64(len(r.meta)))
		for k, v := range r.meta {
			b = binary.AppendUvarint(b, uint64(len(k)))
			b = append(b, k...)
			b = binary.AppendUvarint(b, uint64(len(v)))
			b = append(b, v...)
		}
	case opRenew:
		b = binary.AppendVarint(b, r.expiresAt)
	}
	return b
}

// appendFrame appends the framed form of payload to b.
func appendFrame(b, payload []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// cursor is a bounds-checked reader over a decoded payload.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("persist: short or malformed %s at offset %d", what, c.off)
	}
}

func (c *cursor) byte(what string) byte {
	if c.err != nil || c.off >= len(c.b) {
		c.fail(what)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) varint(what string) int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) str(what string) string {
	n := c.uvarint(what + " length")
	if c.err != nil {
		return ""
	}
	if uint64(len(c.b)-c.off) < n {
		c.fail(what)
		return ""
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}

// decodePayload parses one frame payload back into a record.
func decodePayload(p []byte) (record, error) {
	c := &cursor{b: p}
	r := record{op: op(c.byte("op"))}
	r.name = int(c.uvarint("name"))
	r.token = c.uvarint("token")
	switch r.op {
	case opAcquire:
		r.expiresAt = c.varint("expires_at")
		r.owner = c.str("owner")
		if n := c.uvarint("meta count"); n > 0 && c.err == nil {
			r.meta = make(map[string]string, n)
			for i := uint64(0); i < n && c.err == nil; i++ {
				k := c.str("meta key")
				r.meta[k] = c.str("meta value")
			}
		}
	case opRenew:
		r.expiresAt = c.varint("expires_at")
	case opRelease, opExpire:
	default:
		return record{}, fmt.Errorf("persist: unknown record op %d", r.op)
	}
	if c.err != nil {
		return record{}, c.err
	}
	if c.off != len(p) {
		return record{}, fmt.Errorf("persist: %d trailing bytes after record", len(p)-c.off)
	}
	return r, nil
}

// scanFrames walks the framed region of buf (magic already stripped),
// invoking apply for every valid record, and returns the byte length of
// the longest valid prefix plus the number of records applied. The first
// frame that is short, oversized, CRC-mismatched or undecodable ends the
// scan — that is the torn tail; the caller truncates there.
func scanFrames(buf []byte, apply func(record)) (valid int64, n int) {
	off := 0
	for {
		if len(buf)-off < 8 {
			return int64(off), n // torn or clean EOF mid-header
		}
		length := int(binary.LittleEndian.Uint32(buf[off:]))
		sum := binary.LittleEndian.Uint32(buf[off+4:])
		if length > maxFrame || len(buf)-off-8 < length {
			return int64(off), n // impossible or short payload
		}
		payload := buf[off+8 : off+8+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return int64(off), n
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return int64(off), n
		}
		apply(rec)
		off += 8 + length
		n++
	}
}
