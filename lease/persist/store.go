// Package persist is the crash-durability layer for the lease table: a
// CRC-framed append-only journal plus periodic snapshot compaction, so a
// restarted renamed process recovers every unexpired lease — with its
// fencing token — instead of silently dropping all of them and resetting
// the token counter (which let restarted holders collide and stale tokens
// win).
//
// A Store implements lease.Observer: wire it into lease.Config.Observer
// and every grant, renewal, release and expiry is journaled in the order
// the table applied it (the manager invokes observers under the owning
// stripe's lock, so per-name order is exact). On restart, Open loads the
// latest snapshot, replays the journal over it — truncating a torn tail
// from a mid-write crash — and State() hands the recovered leases plus
// the fencing-token watermark to lease.Manager.Restore.
//
//	st, _ := persist.Open(dir, persist.Options{Fsync: persist.FsyncInterval})
//	mgr, _ := lease.New(nm, lease.Config{Observer: st})
//	restored, expired, _ := mgr.Restore(st.State())
//	...
//	mgr.Shutdown() // quiesce WITHOUT releasing names
//	st.Close()     // final snapshot: next boot replays nothing
//
// Durability is as strong as the fsync policy: FsyncAlways makes every
// record durable before the caller sees the result (a granted token can
// never be forgotten, at the cost of one fsync per operation, serialized
// under the journal mutex); FsyncInterval (the default) bounds loss to
// the configured window — after kill -9 the tail of that window may be
// gone, which can forget the last few renews (restored expiries run a
// beat stale) or, worst case, re-issue the tokens of just-granted leases;
// FsyncNever leaves flushing to the OS entirely. Against plain process
// crashes (kill -9, panics) even FsyncNever loses at most the store's
// small user-space buffer, because the page cache survives the process.
package persist

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/lease"
)

const (
	journalName = "journal.wal"
	// journalPrevName is the rotated-aside journal a compaction is in the
	// middle of folding into a snapshot. It exists only between a
	// rotation and that compaction's snapshot rename; finding one at Open
	// means the process died inside the window, and its records replay
	// BEFORE the active journal's (they are strictly older).
	journalPrevName = "journal.wal.prev"
	// journalNextName is the staging name for a rotation's replacement
	// journal, prepared (created, magic written, fsynced) outside the
	// store mutex and renamed into place under it. One left on disk is a
	// crashed rotation's garbage; Open removes it.
	journalNextName = "journal.wal.next"
	snapshotName    = "snapshot.db"
)

// Policy selects when journal appends reach the disk.
type Policy int

const (
	// FsyncInterval (the default) flushes and fsyncs the journal every
	// Options.FsyncEvery: bounded loss, amortized cost.
	FsyncInterval Policy = iota
	// FsyncAlways fsyncs after every record, before the lease operation
	// returns — strict durability, one fsync per operation.
	FsyncAlways
	// FsyncNever flushes to the OS on the FsyncEvery cadence but never
	// forces the disk; a machine crash can lose the page cache, a mere
	// process crash cannot.
	FsyncNever
)

// ParsePolicy maps the CLI spelling ("always", "interval", "never") to a
// Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (want always, interval or never)", s)
}

func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Options tunes a Store. The zero value is usable: interval fsync every
// 100ms, compaction considered every minute.
type Options struct {
	// Fsync is the journal durability policy.
	Fsync Policy
	// FsyncEvery is the flush (and, under FsyncInterval, fsync) cadence.
	// Defaults to 100ms.
	FsyncEvery time.Duration
	// CompactEvery is how often the background compactor considers
	// snapshotting. Defaults to 1 minute; negative disables background
	// compaction (Close still writes a final snapshot, and Compact can be
	// called explicitly).
	CompactEvery time.Duration
	// CompactMinRecords is the journal-length floor below which a
	// background compaction pass is skipped: a snapshot costs O(live), so
	// it only pays once replaying the journal would cost more. The pass
	// runs when records-since-snapshot >= max(CompactMinRecords, live).
	// Defaults to 4096.
	CompactMinRecords int
}

func (o *Options) applyDefaults() {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = time.Minute
	}
	if o.CompactMinRecords <= 0 {
		o.CompactMinRecords = 4096
	}
}

// Stats is a snapshot of a store's counters.
type Stats struct {
	// RecoveredLeases, ReplayedRecords and TruncatedBytes describe what
	// Open found: leases live after snapshot+replay, journal records
	// replayed, and torn-tail bytes dropped.
	RecoveredLeases int
	ReplayedRecords int
	TruncatedBytes  int64
	// RecoveryDuration is how long Open spent rebuilding state: snapshot
	// load, journal replay, torn-tail truncation and (when the journal
	// held anything) the boot compaction.
	RecoveryDuration time.Duration
	// Appends, Syncs and Compactions count work since Open.
	Appends     int64
	Syncs       int64
	Compactions int64
	// JournalBytes is the framed bytes appended to the journal since
	// Open — the write-amplification numerator for the durability layer.
	JournalBytes int64
	// JournalRecords is the journal length since the last snapshot — the
	// replay cost a crash right now would pay.
	JournalRecords int64
	// Live is the mirror size: leases the durable state believes are held.
	Live int
	// Err is the sticky first journal-write failure, nil while healthy.
	// The mirror keeps tracking state after a failure, so the next
	// successful compaction repairs durability — but until then a crash
	// loses everything after the error. Alert on it.
	Err error
}

// Store is the durable lease table: an in-memory mirror of the live
// leases (maintained through the lease.Observer callbacks), the journal
// that makes each transition durable, and the snapshot that bounds
// recovery. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	// compactMu serializes whole compactions (rotate → snapshot →
	// delete); it is taken before mu and never while holding it. Without
	// it, a concurrent Compact could rotate the journal over a prev file
	// whose records no snapshot covers yet.
	compactMu sync.Mutex

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	mirror   map[int]lease.Lease
	maxToken uint64
	records  int64 // journal records since the last snapshot
	dirty    bool  // buffered or written bytes not yet fsynced
	closed   bool
	err      error // sticky first journal failure

	// encode scratch, reused under mu so steady-state appends allocate
	// nothing.
	payload []byte
	frame   []byte

	appends      atomic.Int64
	syncs        atomic.Int64
	compactions  atomic.Int64
	journalBytes atomic.Int64

	recoveredLeases  int
	replayedRecords  int
	truncatedBytes   int64
	recoveryDuration time.Duration

	done chan struct{}
	wg   sync.WaitGroup
}

// Open recovers the durable state under dir (creating it if needed):
// load the snapshot, replay the journal over it, truncate any torn tail,
// and — when the journal held anything — compact immediately so the next
// recovery starts from a fresh snapshot. The returned store is ready to
// observe a manager; read the recovered state with State.
func Open(dir string, opts Options) (*Store, error) {
	openStart := time.Now()
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	mirror, maxToken, err := loadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		mirror: mirror,
		done:   make(chan struct{}),
	}
	s.maxToken = maxToken
	// A staging journal left by a crashed rotation carries no records —
	// it is created empty and only ever renamed into place; drop it.
	os.Remove(filepath.Join(dir, journalNextName))
	// A journal.wal.prev means the last process died (or errored) inside
	// a compaction window. Its records are strictly older than the active
	// journal's, so they fold in first; the snapshot-superset invariant
	// plus applyLocked's token guards make re-folding records an already-
	// renamed snapshot covers a no-op.
	prevReplayed, err := s.replayPrevJournal()
	if err != nil {
		return nil, err
	}
	if err := s.openJournal(); err != nil {
		return nil, err
	}
	s.replayedRecords += prevReplayed
	s.recoveredLeases = len(s.mirror)
	if s.replayedRecords > 0 {
		// Start the epoch from a fresh snapshot: replay work is not paid
		// twice, release/expire records stop occupying journal space, and
		// the prev file (if any) is retired. Boot is single-threaded, so
		// the simple order — snapshot from the mirror, then clear the
		// journals — is safe here.
		if err := s.bootCompact(); err != nil {
			s.f.Close()
			return nil, err
		}
	}
	s.recoveryDuration = time.Since(openStart)
	s.wg.Add(1)
	go s.flushLoop()
	if s.opts.CompactEvery > 0 {
		s.wg.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

// replayPrevJournal folds a leftover rotated journal into the mirror.
// The file was fully flushed and fsynced before it was renamed aside, so
// it should never be torn; scanFrames still stops at the first invalid
// frame defensively. The file itself is retired by bootCompact.
func (s *Store) replayPrevJournal() (int, error) {
	buf, err := os.ReadFile(filepath.Join(s.dir, journalPrevName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("persist: prev journal: %w", err)
	}
	if len(buf) < len(journalMagic) {
		return 0, nil // torn beyond the magic: nothing recoverable
	}
	if string(buf[:len(journalMagic)]) != journalMagic {
		return 0, fmt.Errorf("persist: %s: bad journal magic", journalPrevName)
	}
	_, n := scanFrames(buf[len(journalMagic):], s.applyLocked)
	return n, nil
}

// openJournal opens, validates, replays and truncates the journal file,
// leaving s.f positioned for appends. Runs during Open, before any
// concurrency — no locking needed.
func (s *Store) openJournal() error {
	path := filepath.Join(s.dir, journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("persist: journal: %w", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: journal: %w", err)
	}
	if len(buf) < len(journalMagic) {
		// Fresh file, or a crash tore the magic itself: (re)initialize.
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt([]byte(journalMagic), 0)
		}
		if err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("persist: journal init: %w", err)
		}
		buf = []byte(journalMagic)
	} else if string(buf[:len(journalMagic)]) != journalMagic {
		f.Close()
		return fmt.Errorf("persist: %s: bad journal magic", path)
	}
	valid, n := scanFrames(buf[len(journalMagic):], s.applyLocked)
	end := int64(len(journalMagic)) + valid
	if torn := int64(len(buf)) - end; torn > 0 {
		// Torn tail from a mid-write crash: drop it so the file is a
		// well-formed frame sequence again, and persist the truncation
		// before anything is appended after it.
		if err := f.Truncate(end); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("persist: journal truncate: %w", err)
		}
		s.truncatedBytes = torn
	}
	if _, err := f.Seek(end, 0); err != nil {
		f.Close()
		return fmt.Errorf("persist: journal: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.records = int64(n)
	s.replayedRecords = n
	return nil
}

// applyLocked folds one record into the mirror. Token guards make the
// fold idempotent and safe against replaying stale records over a newer
// state: a verdict about an old token never touches a lease minted after
// it, and an acquire never downgrades a name to an older holder (per-name
// tokens strictly increase, so a smaller token IS an older record). The
// compaction protocol already guarantees the durable journal covers every
// snapshot (rotation syncs before the snapshot is written); the guards
// are defense in depth for any inversion that slips past it.
func (s *Store) applyLocked(r record) {
	if r.token > s.maxToken {
		s.maxToken = r.token
	}
	switch r.op {
	case opAcquire:
		if l, ok := s.mirror[r.name]; ok && l.Token > r.token {
			return
		}
		s.mirror[r.name] = leaseFromRecord(r)
	case opRenew:
		if l, ok := s.mirror[r.name]; ok && l.Token == r.token {
			l.ExpiresAt = time.Unix(0, r.expiresAt)
			s.mirror[r.name] = l
		}
	case opRelease, opExpire:
		if l, ok := s.mirror[r.name]; ok && l.Token == r.token {
			delete(s.mirror, r.name)
		}
	}
}

// ObserveAcquire implements lease.Observer.
func (s *Store) ObserveAcquire(l lease.Lease) { s.append(recordFromLease(l)) }

// ObserveRenew implements lease.Observer.
func (s *Store) ObserveRenew(name int, token uint64, expiresAt time.Time) {
	s.append(record{op: opRenew, name: name, token: token, expiresAt: expiresAt.UnixNano()})
}

// ObserveRelease implements lease.Observer.
func (s *Store) ObserveRelease(name int, token uint64) {
	s.append(record{op: opRelease, name: name, token: token})
}

// ObserveExpire implements lease.Observer.
func (s *Store) ObserveExpire(name int, token uint64) {
	s.append(record{op: opExpire, name: name, token: token})
}

// append journals one record and folds it into the mirror. The Observer
// contract carries no error channel, so journal failures go sticky (see
// Stats.Err): the mirror stays correct regardless, and the next
// successful compaction restores durability.
func (s *Store) append(rec record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLocked(rec)
	if s.closed {
		s.failLocked(errors.New("persist: append after Close"))
		return
	}
	s.payload = appendPayload(s.payload[:0], rec)
	s.frame = appendFrame(s.frame[:0], s.payload)
	if _, err := s.w.Write(s.frame); err != nil {
		s.failLocked(err)
		return
	}
	s.records++
	s.appends.Add(1)
	s.journalBytes.Add(int64(len(s.frame)))
	if s.opts.Fsync == FsyncAlways {
		if err := s.syncLocked(); err != nil {
			s.failLocked(err)
			return
		}
	} else {
		s.dirty = true
	}
}

// syncLocked flushes the buffered writer and fsyncs the journal.
func (s *Store) syncLocked() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.dirty = false
	s.syncs.Add(1)
	return nil
}

func (s *Store) failLocked(err error) {
	if s.err == nil {
		s.err = err
	}
}

// flushLoop is the FsyncInterval/FsyncNever background writer: every
// FsyncEvery it pushes buffered records to the OS and (interval policy)
// to the disk.
func (s *Store) flushLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.FsyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.mu.Lock()
			if s.dirty && !s.closed {
				var err error
				if s.opts.Fsync == FsyncNever {
					err = s.w.Flush()
					s.dirty = false
				} else {
					err = s.syncLocked()
				}
				if err != nil {
					s.failLocked(err)
				}
			}
			s.mu.Unlock()
		}
	}
}

// compactLoop periodically snapshots once the journal is long enough
// that replaying it would cost more than writing the table out.
func (s *Store) compactLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.CompactEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.mu.Lock()
			threshold := int64(s.opts.CompactMinRecords)
			if live := int64(len(s.mirror)); live > threshold {
				threshold = live
			}
			due := !s.closed && s.records >= threshold
			s.mu.Unlock()
			if due {
				// Losing the race to Close is not a durability failure —
				// poisoning the sticky error with it would make a clean
				// graceful shutdown report itself FAILED.
				if err := s.compact(); err != nil && !errors.Is(err, errStoreClosed) {
					s.mu.Lock()
					s.failLocked(err)
					s.mu.Unlock()
				}
			}
		}
	}
}

// Compact forces a snapshot now: the table state is written out
// atomically and the journal restarts empty.
func (s *Store) Compact() error {
	return s.compact()
}

// compact is the runtime compaction. It must NOT hold the store mutex
// across the O(live) snapshot serialization and its fsyncs — observer
// appends run under the manager's stripe locks and block on that mutex,
// so a held-through-disk-write compaction would stall every lease
// operation on every stripe for its whole duration. Protocol:
//
//  1. Under the mutex (cheap, memory-speed): flush+fsync the active
//     journal — establishing the invariant that the DURABLE journal
//     covers every record in the mirror, which is what makes replaying
//     journals past an already-renamed snapshot idempotent — rotate it
//     aside as journal.wal.prev, start a fresh journal, clone the
//     mirror.
//  2. Outside the mutex: serialize the clone into the snapshot (atomic
//     tmp+rename+dir-fsync) and delete the rotated file.
//
// A crash anywhere in the window leaves prev + active on disk; Open
// replays prev before active. compactMu serializes whole compactions.
// errStoreClosed is compaction's benign loser-of-the-race-with-Close
// outcome; callers that retry in the background must not treat it as a
// durability failure.
var errStoreClosed = errors.New("persist: store closed")

func (s *Store) compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// A leftover prev means an earlier compaction failed after rotating
	// (its snapshot write errored). Rotating again would orphan those
	// records, so finish the pending fold instead: snapshot the current
	// mirror — which covers prev and everything since — without
	// rotating. The active journal keeps its records; they are covered
	// by the new snapshot and re-folding them at recovery is idempotent.
	// Only a definite not-exist takes the rotate path: a Stat that fails
	// any other way (EIO, EACCES) must be treated as "prev may exist",
	// because rotating over an un-snapshotted prev orphans its records.
	if _, err := os.Stat(filepath.Join(s.dir, journalPrevName)); !errors.Is(err, os.ErrNotExist) {
		return s.compactKeepJournal()
	}

	// Prepare the replacement journal BEFORE taking the store mutex: its
	// creation, magic write and fsync are independent of store state, and
	// every fsync held under s.mu is a stall for every lease operation on
	// every stripe.
	next, err := prepareJournal(s.dir)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		next.Close()
		os.Remove(filepath.Join(s.dir, journalNextName))
		return errStoreClosed
	}
	clone, watermark, err := s.rotateLocked(next)
	s.mu.Unlock()
	if err != nil {
		next.Close()
		os.Remove(filepath.Join(s.dir, journalNextName))
		return err
	}
	// Make the renames durable before the snapshot that depends on them;
	// writeSnapshot's own directory fsync would cover the same entries,
	// but the explicit ordering costs one cheap fsync and reads clearly.
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if err := writeSnapshot(s.dir, clone, watermark); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.dir, journalPrevName)); err != nil {
		return fmt.Errorf("persist: compact: %w", err)
	}
	s.compactions.Add(1)
	return nil
}

// prepareJournal creates a fresh, fsynced journal file under the
// staging name, ready to be renamed into place during rotation.
func prepareJournal(dir string) (*os.File, error) {
	path := filepath.Join(dir, journalNextName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: rotate: %w", err)
	}
	if _, err := f.Write([]byte(journalMagic)); err == nil {
		err = f.Sync()
	} else {
		err = fmt.Errorf("persist: rotate: %w", err)
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return f, nil
}

// compactKeepJournal writes a snapshot of the current mirror without
// touching the journals — the recovery move for a half-finished earlier
// compaction. The journal stays long until the next healthy compaction
// rotates it.
func (s *Store) compactKeepJournal() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errStoreClosed
	}
	if err := s.syncLocked(); err != nil {
		// A broken journal writer must not block the snapshot — the
		// snapshot is written from the mirror and is exactly how
		// durability gets restored after a journal failure.
		s.failLocked(err)
	}
	clone, watermark := s.cloneLocked()
	s.mu.Unlock()
	if err := writeSnapshot(s.dir, clone, watermark); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.dir, journalPrevName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("persist: compact: %w", err)
	}
	s.compactions.Add(1)
	return nil
}

// rotateLocked flushes and fsyncs the active journal, moves it aside as
// journal.wal.prev, renames the caller-prepared fresh journal into
// place, and returns a snapshot-stable clone of the mirror plus the
// token watermark. Under s.mu this is one (usually small) journal fsync
// plus two renames and a map copy — the expensive parts of rotation
// (fresh-journal creation and its fsync, the O(live) snapshot, the
// directory fsync) happen outside in compact(). The old handle is
// closed only AFTER its replacement is fully secured: a rotation that
// fails partway renames the file back and leaves the store appending to
// the original handle — degraded to a longer journal, not wedged on a
// closed fd. Callers hold s.mu (and compactMu around the surrounding
// compaction); on error the caller owns cleaning up `next`.
func (s *Store) rotateLocked(next *os.File) (map[int]lease.Lease, uint64, error) {
	if err := s.syncLocked(); err != nil {
		// The journal writer is broken — bufio errors are sticky, so some
		// buffered records will never reach this file and every future
		// flush would fail the same way. Wedging the compaction on it
		// would make the breakage permanent; rotating FORWARD is strictly
		// better: the mirror still holds every record, the snapshot about
		// to be written covers them, and w.Reset onto the fresh journal
		// clears the writer. The sticky Stats.Err keeps the incident (and
		// its loss window) visible.
		s.failLocked(err)
	}
	path := filepath.Join(s.dir, journalName)
	prev := filepath.Join(s.dir, journalPrevName)
	// The renames do not disturb open handles: each follows its inode,
	// so until the swap below every fallback path still has a live
	// journal under s.f.
	if err := os.Rename(path, prev); err != nil {
		return nil, 0, fmt.Errorf("persist: rotate: %w", err)
	}
	if err := os.Rename(filepath.Join(s.dir, journalNextName), path); err != nil {
		// Best-effort restore of the original layout; if even the
		// rename-back fails, prev remains and the next compaction takes
		// the keep-journal path, which never rotates over it.
		os.Rename(prev, path)
		return nil, 0, fmt.Errorf("persist: rotate: %w", err)
	}
	// Replacement secured: swap handles and retire the old one. Its data
	// is already synced, so a close error is only worth recording.
	old := s.f
	s.f = next
	s.w.Reset(next)
	s.records = 0
	s.dirty = false
	if err := old.Close(); err != nil {
		s.failLocked(err)
	}
	clone, watermark := s.cloneLocked()
	return clone, watermark, nil
}

// cloneLocked copies the mirror for out-of-lock serialization. Lease
// values are shared (never mutated in place), so this is an O(live)
// memory copy, not a deep clone.
func (s *Store) cloneLocked() (map[int]lease.Lease, uint64) {
	clone := make(map[int]lease.Lease, len(s.mirror))
	for k, v := range s.mirror {
		clone[k] = v
	}
	return clone, s.maxToken
}

// bootCompact is the Open-time (single-threaded) compaction: snapshot
// straight from the mirror, then truncate the active journal and retire
// any prev. The order matters — the snapshot must be durable before the
// journals that fed it are cleared.
func (s *Store) bootCompact() error {
	if err := writeSnapshot(s.dir, s.mirror, s.maxToken); err != nil {
		return err
	}
	if err := s.resetJournalLocked(); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.dir, journalPrevName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("persist: compact: %w", err)
	}
	s.compactions.Add(1)
	return nil
}

// resetJournalLocked truncates the active journal back to its magic and
// fsyncs the truncation before any append can land after it, so a crash
// cannot surface stale frames past the new tail. Callers hold s.mu (or
// own the store exclusively).
func (s *Store) resetJournalLocked() error {
	if err := s.f.Truncate(int64(len(journalMagic))); err != nil {
		return fmt.Errorf("persist: compact: %w", err)
	}
	if _, err := s.f.Seek(int64(len(journalMagic)), 0); err != nil {
		return fmt.Errorf("persist: compact: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("persist: compact: %w", err)
	}
	s.w.Reset(s.f)
	s.records = 0
	s.dirty = false
	return nil
}

// State returns the recovered (and since-maintained) durable state in
// the shape lease.Manager.Restore consumes: every lease the store
// believes is live, ordered by name, plus the fencing-token watermark.
func (s *Store) State() lease.RestoreState {
	s.mu.Lock()
	defer s.mu.Unlock()
	leases := make([]lease.Lease, 0, len(s.mirror))
	for _, l := range s.mirror {
		leases = append(leases, l)
	}
	sort.Slice(leases, func(i, j int) bool { return leases[i].Name < leases[j].Name })
	return lease.RestoreState{Leases: leases, Token: s.maxToken}
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		RecoveredLeases:  s.recoveredLeases,
		ReplayedRecords:  s.replayedRecords,
		TruncatedBytes:   s.truncatedBytes,
		RecoveryDuration: s.recoveryDuration,
		Appends:          s.appends.Load(),
		Syncs:            s.syncs.Load(),
		Compactions:      s.compactions.Load(),
		JournalBytes:     s.journalBytes.Load(),
		JournalRecords:   s.records,
		Live:             len(s.mirror),
		Err:              s.err,
	}
}

// Close stops the background goroutines, writes a final snapshot (the
// graceful-shutdown snapshot: the next Open replays nothing) and closes
// the journal. Quiesce the manager (lease.Manager.Shutdown) BEFORE
// closing the store, or late observer callbacks land in the sticky
// error. Idempotent; returns the sticky journal error if one occurred.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	// Final snapshot — the graceful-shutdown snapshot. The store is
	// closed and the goroutines are gone, so the boot-style order is
	// safe: flush what's buffered (preserving the journal if the
	// snapshot write fails), snapshot from the mirror, clear journals.
	// A broken journal writer does NOT skip the snapshot — the snapshot
	// comes from the mirror and is what rescues a failed journal.
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if serr := s.syncLocked(); serr != nil {
		s.failLocked(serr)
	}
	err := s.bootCompact()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = s.err
	}
	return err
}

// Crash abandons the store the way kill -9 would: background goroutines
// stop, the file handle closes, and anything still in the user-space
// buffer is lost — no flush, no snapshot. The on-disk state is exactly
// what the fsync policy had made durable. Recovery tests and the crash
// experiment use it; production code wants Close.
func (s *Store) Crash() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }
