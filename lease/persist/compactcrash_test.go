package persist

import (
	"os"
	"path/filepath"
	"testing"

	"repro/lease"
)

// writeJournalFile crafts a raw journal of records at path.
func writeJournalFile(t *testing.T, path string, recs []record) {
	t.Helper()
	buf := []byte(journalMagic)
	var payload []byte
	for _, r := range recs {
		payload = appendPayload(payload[:0], r)
		buf = appendFrame(buf, payload)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStaleJournalOverNewerSnapshot is the regression test for the
// compaction crash-window inversion: a crash between the snapshot
// rename and the journal reset used to leave a NEWER snapshot with an
// OLDER journal, and replaying acquire(X,t5)+release(X,t5) over a
// snapshot holding X:t9 deleted the durably snapshotted lease. The
// token guard in applyLocked (an acquire never downgrades a name to an
// older holder) plus the rotation protocol must keep X:t9 alive.
func TestStaleJournalOverNewerSnapshot(t *testing.T) {
	dir := t.TempDir()
	// The newer snapshot: X (name 7) held with token 9.
	mirror := map[int]lease.Lease{7: {Name: 7, Token: 9, Owner: "new", ExpiresAt: at(300)}}
	if err := writeSnapshot(dir, mirror, 9); err != nil {
		t.Fatal(err)
	}
	// The older journal: X's previous incarnation, acquired and released
	// with token 5 — records the snapshot already covers.
	writeJournalFile(t, filepath.Join(dir, journalName), []record{
		{op: opAcquire, name: 7, token: 5, expiresAt: at(100).UnixNano(), owner: "old"},
		{op: opRelease, name: 7, token: 5},
	})
	s, err := Open(dir, Options{Fsync: FsyncAlways, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.State()
	wantLeases(t, st, map[int]uint64{7: 9})
	if st.Leases[0].Owner != "new" {
		t.Fatalf("stale acquire overwrote the snapshotted lease: owner %q", st.Leases[0].Owner)
	}
	if st.Token != 9 {
		t.Fatalf("token watermark %d, want 9", st.Token)
	}
}

// TestPrevJournalReplayedBeforeActive pins recovery from a crash inside
// the rotation window: prev (older records) must fold in before the
// active journal, and the union must survive.
func TestPrevJournalReplayedBeforeActive(t *testing.T) {
	dir := t.TempDir()
	if err := writeSnapshot(dir, map[int]lease.Lease{1: {Name: 1, Token: 1, ExpiresAt: at(100)}}, 1); err != nil {
		t.Fatal(err)
	}
	// prev: records rotated aside by the crashed compaction — B acquired,
	// then re-acquired (release lost? no: released and re-acquired).
	writeJournalFile(t, filepath.Join(dir, journalPrevName), []record{
		{op: opAcquire, name: 2, token: 2, expiresAt: at(100).UnixNano()},
		{op: opRelease, name: 2, token: 2},
		{op: opAcquire, name: 2, token: 3, expiresAt: at(200).UnixNano()},
	})
	// active: the fresh journal started after rotation.
	writeJournalFile(t, filepath.Join(dir, journalName), []record{
		{op: opAcquire, name: 4, token: 4, expiresAt: at(100).UnixNano()},
		{op: opRenew, name: 2, token: 3, expiresAt: at(400).UnixNano()},
	})
	s, err := Open(dir, Options{Fsync: FsyncAlways, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	st := s.State()
	wantLeases(t, st, map[int]uint64{1: 1, 2: 3, 4: 4})
	for _, l := range st.Leases {
		if l.Name == 2 && !l.ExpiresAt.Equal(at(400)) {
			t.Fatalf("active-journal renew not applied over prev acquire: expiry %v", l.ExpiresAt)
		}
	}
	if got := s.Stats().ReplayedRecords; got != 5 {
		t.Fatalf("replayed %d records, want 5 (3 prev + 2 active)", got)
	}
	// Boot compaction must have retired the prev file and restarted the
	// journal, and the state must survive another crash cycle.
	if _, err := os.Stat(filepath.Join(dir, journalPrevName)); !os.IsNotExist(err) {
		t.Fatalf("prev journal not retired by boot compaction: %v", err)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	r := openAlways(t, dir)
	defer r.Close()
	wantLeases(t, r.State(), map[int]uint64{1: 1, 2: 3, 4: 4})
	if got := r.Stats().ReplayedRecords; got != 0 {
		t.Fatalf("second boot replayed %d records, want 0 (boot compaction snapshotted)", got)
	}
}

// TestCompactionHealsBrokenJournalWriter pins the self-healing promise
// in Stats.Err's docs: after a journal write failure (bufio errors are
// sticky — every later flush of that writer fails too), the next
// compaction must still write a snapshot from the mirror and hand the
// store a working journal, not wedge forever on the poisoned writer.
func TestCompactionHealsBrokenJournalWriter(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	s.ObserveAcquire(lease.Lease{Name: 1, Token: 1, ExpiresAt: at(100)})
	// Break the journal fd out from under the store: the next flush (and
	// every one after, per bufio's sticky error) fails.
	s.mu.Lock()
	s.f.Close()
	s.mu.Unlock()
	s.ObserveAcquire(lease.Lease{Name: 2, Token: 2, ExpiresAt: at(100)})
	if s.Stats().Err == nil {
		t.Fatal("journal failure not surfaced through Stats.Err")
	}
	// Compaction heals: snapshot from the mirror (which has both
	// leases), fresh journal with a reset writer.
	if err := s.Compact(); err != nil {
		t.Fatalf("compaction wedged on the broken writer: %v", err)
	}
	// The fresh journal accepts and persists new records again.
	s.ObserveAcquire(lease.Lease{Name: 3, Token: 3, ExpiresAt: at(100)})
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	r := openAlways(t, dir)
	defer r.Close()
	wantLeases(t, r.State(), map[int]uint64{1: 1, 2: 2, 3: 3})
}

// TestCompactRotatesAndRetiresPrev pins the runtime protocol end to
// end: Compact leaves a fresh journal, no prev, and a snapshot that
// fully covers the state — all while appends keep landing.
func TestCompactRotatesAndRetiresPrev(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	for i := 0; i < 16; i++ {
		s.ObserveAcquire(lease.Lease{Name: i, Token: uint64(i + 1), ExpiresAt: at(100)})
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalPrevName)); !os.IsNotExist(err) {
		t.Fatalf("prev journal left behind after Compact: %v", err)
	}
	// Post-compact appends land in the fresh journal and survive a crash.
	s.ObserveAcquire(lease.Lease{Name: 20, Token: 21, ExpiresAt: at(100)})
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	r := openAlways(t, dir)
	defer r.Close()
	if got := len(r.State().Leases); got != 17 {
		t.Fatalf("recovered %d leases, want 17", got)
	}
	if got := r.Stats().ReplayedRecords; got != 1 {
		t.Fatalf("replayed %d records, want 1 (only the post-compact acquire)", got)
	}
}
