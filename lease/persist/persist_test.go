package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/lease"
)

var _ lease.Observer = (*Store)(nil)

// at builds a deterministic expiry instant.
func at(sec int64) time.Time { return time.Unix(sec, 0) }

// openAlways opens a store under dir with per-record fsync and no
// background compaction, so tests control exactly what is on disk.
func openAlways(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{Fsync: FsyncAlways, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wantLeases(t *testing.T, st lease.RestoreState, want map[int]uint64) {
	t.Helper()
	if len(st.Leases) != len(want) {
		t.Fatalf("recovered %d leases, want %d (%v)", len(st.Leases), len(want), st.Leases)
	}
	for _, l := range st.Leases {
		tok, ok := want[l.Name]
		if !ok {
			t.Fatalf("unexpected recovered lease on name %d", l.Name)
		}
		if l.Token != tok {
			t.Fatalf("name %d recovered with token %d, want %d", l.Name, l.Token, tok)
		}
	}
}

func TestJournalRoundTripAfterCrash(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	s.ObserveAcquire(lease.Lease{Name: 1, Token: 10, Owner: "w1", ExpiresAt: at(100),
		Meta: map[string]string{"zone": "a"}})
	s.ObserveAcquire(lease.Lease{Name: 2, Token: 11, Owner: "w2", ExpiresAt: at(100)})
	s.ObserveAcquire(lease.Lease{Name: 3, Token: 12, Owner: "w3", ExpiresAt: at(100)})
	s.ObserveRenew(1, 10, at(200))
	s.ObserveRelease(2, 11)
	s.ObserveExpire(3, 12)
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}

	r := openAlways(t, dir)
	defer r.Close()
	st := r.State()
	wantLeases(t, st, map[int]uint64{1: 10})
	if st.Token != 12 {
		t.Fatalf("token watermark %d, want 12 (highest ever seen, not highest live)", st.Token)
	}
	l := st.Leases[0]
	if !l.ExpiresAt.Equal(at(200)) {
		t.Fatalf("renew not replayed: expiry %v, want %v", l.ExpiresAt, at(200))
	}
	if l.Owner != "w1" || l.Meta["zone"] != "a" {
		t.Fatalf("owner/meta lost in replay: %+v", l)
	}
	if got := r.Stats().ReplayedRecords; got != 6 {
		t.Fatalf("replayed %d records, want 6", got)
	}
}

// TestStaleVerdictsIgnoredOnReplay pins the token guard: records about an
// old token must not touch a lease minted after it, so replay tolerates
// duplicated or stale prefixes.
func TestStaleVerdictsIgnoredOnReplay(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	s.ObserveAcquire(lease.Lease{Name: 7, Token: 1, ExpiresAt: at(100)})
	s.ObserveRelease(7, 1)
	s.ObserveAcquire(lease.Lease{Name: 7, Token: 2, ExpiresAt: at(300)})
	// Stale verdicts about token 1 arriving late: must all be no-ops.
	s.ObserveRenew(7, 1, at(999))
	s.ObserveExpire(7, 1)
	s.ObserveRelease(7, 1)
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	r := openAlways(t, dir)
	defer r.Close()
	st := r.State()
	wantLeases(t, st, map[int]uint64{7: 2})
	if !st.Leases[0].ExpiresAt.Equal(at(300)) {
		t.Fatalf("stale renew moved the new lease's expiry: %v", st.Leases[0].ExpiresAt)
	}
}

func TestCloseWritesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	for i := 0; i < 32; i++ {
		s.ObserveAcquire(lease.Lease{Name: i, Token: uint64(i + 1), ExpiresAt: at(100)})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openAlways(t, dir)
	defer r.Close()
	stats := r.Stats()
	if stats.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records after graceful Close, want 0 (snapshot covers all)", stats.ReplayedRecords)
	}
	if stats.RecoveredLeases != 32 {
		t.Fatalf("recovered %d leases, want 32", stats.RecoveredLeases)
	}
	if tok := r.State().Token; tok != 32 {
		t.Fatalf("token watermark %d, want 32", tok)
	}
}

func TestCompactResetsJournalKeepsState(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	s.ObserveAcquire(lease.Lease{Name: 1, Token: 5, ExpiresAt: at(100)})
	s.ObserveAcquire(lease.Lease{Name: 2, Token: 6, ExpiresAt: at(100)})
	s.ObserveRelease(2, 6)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().JournalRecords; got != 0 {
		t.Fatalf("journal holds %d records after Compact, want 0", got)
	}
	// Journal file really is reset to just the magic.
	fi, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(journalMagic)) {
		t.Fatalf("journal size %d after Compact, want %d", fi.Size(), len(journalMagic))
	}
	s.ObserveAcquire(lease.Lease{Name: 3, Token: 7, ExpiresAt: at(100)})
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	r := openAlways(t, dir)
	defer r.Close()
	wantLeases(t, r.State(), map[int]uint64{1: 5, 3: 7})
	if tok := r.State().Token; tok != 7 {
		t.Fatalf("token watermark %d, want 7", tok)
	}
}

// TestTokenWatermarkSurvivesEmptyTable pins that the watermark is carried
// by the snapshot itself, not derived from live leases: a table that
// empties out must still never re-issue old tokens after restart.
func TestTokenWatermarkSurvivesEmptyTable(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	s.ObserveAcquire(lease.Lease{Name: 1, Token: 41, ExpiresAt: at(100)})
	s.ObserveRelease(1, 41)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openAlways(t, dir)
	defer r.Close()
	st := r.State()
	if len(st.Leases) != 0 || st.Token != 41 {
		t.Fatalf("got %d leases, watermark %d; want 0 leases, watermark 41", len(st.Leases), st.Token)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"always": FsyncAlways, "interval": FsyncInterval, "": FsyncInterval, "never": FsyncNever,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestBadSnapshotIsHardError(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	s.ObserveAcquire(lease.Lease{Name: 1, Token: 1, ExpiresAt: at(100)})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot; stale leases could resurrect")
	}
}

func TestAppendAfterCloseGoesSticky(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.ObserveAcquire(lease.Lease{Name: 1, Token: 1, ExpiresAt: at(100)})
	if s.Stats().Err == nil {
		t.Fatal("append after Close not surfaced through Stats.Err")
	}
}

func TestFsyncIntervalFlushesWithoutCrashLoss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncInterval, FsyncEvery: 5 * time.Millisecond, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.ObserveAcquire(lease.Lease{Name: 1, Token: 9, ExpiresAt: at(100)})
	// Wait for the background flusher to push the record out, then crash:
	// the record must survive even though Crash never flushes.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	r := openAlways(t, dir)
	defer r.Close()
	wantLeases(t, r.State(), map[int]uint64{1: 9})
}

func TestStickyErrIsFirstError(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	s := &Store{}
	s.failLocked(e1)
	s.failLocked(e2)
	if s.err != e1 {
		t.Fatalf("sticky error %v, want the first failure", s.err)
	}
}

// TestStatsTelemetryFields covers the fields the telemetry exposition
// scrapes: JournalBytes must grow with every append (framed bytes, so
// strictly more than the payload) and RecoveryDuration must be set by
// Open.
func TestStatsTelemetryFields(t *testing.T) {
	dir := t.TempDir()
	s := openAlways(t, dir)
	if s.Stats().JournalBytes != 0 {
		t.Fatalf("fresh store reports %d journal bytes, want 0", s.Stats().JournalBytes)
	}
	s.ObserveAcquire(lease.Lease{Name: 1, Token: 1, ExpiresAt: at(100)})
	after1 := s.Stats().JournalBytes
	if after1 <= 0 {
		t.Fatalf("JournalBytes = %d after one append, want > 0", after1)
	}
	s.ObserveRenew(1, 1, at(200))
	if got := s.Stats().JournalBytes; got <= after1 {
		t.Fatalf("JournalBytes = %d after second append, want > %d", got, after1)
	}
	if d := s.Stats().RecoveryDuration; d <= 0 {
		t.Fatalf("RecoveryDuration = %v, want > 0", d)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	r := openAlways(t, dir)
	defer r.Close()
	// JournalBytes counts work since Open, not recovered history.
	if got := r.Stats().JournalBytes; got != 0 {
		t.Fatalf("reopened store reports %d journal bytes, want 0", got)
	}
	if d := r.Stats().RecoveryDuration; d <= 0 {
		t.Fatalf("RecoveryDuration after replaying = %v, want > 0", d)
	}
}
