// audit.go is the read-only inspection half of the durability layer:
// ReadAudit rebuilds the durable state of a data directory — snapshot,
// rotated journal, active journal — WITHOUT opening it for writing,
// truncating torn tails, or compacting, so a verifier (the chaos
// harness's invariant checker, an operator's post-incident shell) can
// examine exactly what a recovery would see while the files stay
// byte-identical.
//
// Beyond the recovered table, the audit replays the journal's record
// stream through the same per-name fencing rules recovery uses and
// reports every violation it finds instead of silently tolerating it:
// an acquire whose token moves a name's token BACKWARD in time (equal
// tokens are the idempotent replay compaction legitimately produces).
// A healthy server can never produce one — the token counter is global
// and strictly increasing, and Restore resumes it above the recovered
// watermark — so a non-empty Regressions list is evidence of a fencing
// bug, not noise.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/lease"
)

// TokenRegression is one fencing-order violation found in the journal
// stream: a record that would move a name's token backwards (or sideways)
// in time.
type TokenRegression struct {
	// Name is the lease name whose token order broke.
	Name int
	// PrevToken is the highest token the stream had previously
	// established for the name; Token is the offending acquire's token,
	// which moved backward past it.
	PrevToken, Token uint64
	// Source is the file the offending record came from
	// ("journal.wal.prev", "journal.wal").
	Source string
}

func (r TokenRegression) String() string {
	return fmt.Sprintf("name %d: acquire token %d after token %d (%s)", r.Name, r.Token, r.PrevToken, r.Source)
}

// Audit is the result of a read-only scan of a persist directory.
type Audit struct {
	// Leases is the live table a recovery from this directory would
	// restore (snapshot + journals folded, expiry not evaluated), sorted
	// by name.
	Leases []lease.Lease
	// MaxToken is the fencing-token watermark: the highest token in the
	// snapshot header or any journal record. A restarted manager mints
	// strictly above it.
	MaxToken uint64
	// SnapshotLeases is how many leases the snapshot alone carried.
	SnapshotLeases int
	// PrevRecords and JournalRecords count valid records in the rotated
	// and active journals.
	PrevRecords, JournalRecords int
	// TornBytes is the length of the active journal's invalid tail — the
	// bytes a recovery would truncate. After a graceful shutdown it must
	// be 0 (the final snapshot empties the journal entirely).
	TornBytes int64
	// Regressions lists every fencing-order violation in the journal
	// stream. Empty on any healthy history.
	Regressions []TokenRegression
}

// ReadAudit scans dir without modifying anything. A missing directory or
// a directory with no durable state yields an empty audit, mirroring
// what Open would recover from it.
func ReadAudit(dir string) (*Audit, error) {
	mirror, maxToken, err := loadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	a := &Audit{MaxToken: maxToken, SnapshotLeases: len(mirror)}

	// Snapshot leases seed the per-name fencing watermarks: a journal
	// acquire for a name the snapshot already holds must outrank the
	// snapshot's token (the stale-record guard recovery applies — here a
	// violation is REPORTED, because a durable journal is fsynced before
	// the snapshot covering it is renamed, so its surviving records are
	// never older than the snapshot).
	perName := make(map[int]uint64, len(mirror))
	for name, l := range mirror {
		perName[name] = l.Token
	}

	fold := func(source string, r record) {
		if r.token > a.MaxToken {
			a.MaxToken = r.token
		}
		if r.op == opAcquire {
			// Strictly-less is a regression; EQUAL is the idempotent replay
			// a rotated journal legitimately produces over the snapshot that
			// covers it (the journal is durable before the snapshot lands).
			if prev, ok := perName[r.name]; ok && r.token < prev {
				a.Regressions = append(a.Regressions, TokenRegression{
					Name: r.name, PrevToken: prev, Token: r.token, Source: source,
				})
			} else {
				perName[r.name] = r.token
			}
		}
		// The mirror fold mirrors applyLocked exactly so the audit's view
		// of the live table matches what Restore would be handed.
		switch r.op {
		case opAcquire:
			if l, ok := mirror[r.name]; ok && l.Token > r.token {
				return
			}
			mirror[r.name] = leaseFromRecord(r)
		case opRenew:
			if l, ok := mirror[r.name]; ok && l.Token == r.token {
				l.ExpiresAt = leaseFromRecord(r).ExpiresAt
				mirror[r.name] = l
			}
		case opRelease, opExpire:
			if l, ok := mirror[r.name]; ok && l.Token == r.token {
				delete(mirror, r.name)
			}
		}
	}

	// Rotated journal first (strictly older records), then the active
	// one — the same order Open replays them in.
	a.PrevRecords, _, err = auditJournal(filepath.Join(dir, journalPrevName), fold)
	if err != nil {
		return nil, err
	}
	var torn int64
	a.JournalRecords, torn, err = auditJournal(filepath.Join(dir, journalName), fold)
	if err != nil {
		return nil, err
	}
	a.TornBytes = torn

	a.Leases = make([]lease.Lease, 0, len(mirror))
	for _, l := range mirror {
		a.Leases = append(a.Leases, l)
	}
	sort.Slice(a.Leases, func(i, j int) bool { return a.Leases[i].Name < a.Leases[j].Name })
	return a, nil
}

// auditJournal scans one journal file read-only, returning the valid
// record count and the invalid tail length. Missing files are empty;
// a present file with the wrong magic is an error.
func auditJournal(path string, apply func(source string, r record)) (records int, torn int64, err error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("persist: audit: %w", err)
	}
	if len(buf) < len(journalMagic) {
		// A crash can tear the magic itself; everything is tail.
		return 0, int64(len(buf)), nil
	}
	if string(buf[:len(journalMagic)]) != journalMagic {
		return 0, 0, fmt.Errorf("persist: audit %s: bad journal magic", filepath.Base(path))
	}
	source := filepath.Base(path)
	valid, n := scanFrames(buf[len(journalMagic):], func(r record) { apply(source, r) })
	return n, int64(len(buf)) - int64(len(journalMagic)) - valid, nil
}
