package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	renaming "repro"
	"repro/lease"
)

// BenchmarkJournaledChurn measures the journal's tax on one
// acquire+release cycle per fsync policy, against the same manager with
// no observer. The acceptance budget lives on the disabled path (see
// lease's BenchmarkAcquireRelease — a nil observer is one branch); these
// rows price the enabled policies.
func BenchmarkJournaledChurn(b *testing.B) {
	const standing = 1 << 10
	run := func(b *testing.B, store *Store) {
		nm, err := renaming.NewLevelArray(standing + 8)
		if err != nil {
			b.Fatal(err)
		}
		cfg := lease.Config{TTL: time.Hour, SweepInterval: -1}
		if store != nil {
			cfg.Observer = store
		}
		mgr, err := lease.New(nm, cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer mgr.Close()
		for i := 0; i < standing; i++ {
			if _, err := mgr.Acquire("bench-standing", 0, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l, err := mgr.Acquire("bench-churn", 0, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := mgr.Release(l.Name, l.Token); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	for _, p := range []Policy{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run(fmt.Sprintf("fsync=%s", p), func(b *testing.B) {
			store, err := Open(b.TempDir(), Options{Fsync: p, CompactEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			run(b, store)
		})
	}
}

// BenchmarkRecovery measures Open (journal replay, torn-tail check,
// initial compaction) plus Manager.Restore for a journal-only state of
// `n` live leases — the cold-boot cost after a crash with no snapshot.
// Each iteration stages a pristine copy of the crashed journal, because
// Open itself compacts (a second Open of the same dir would load the
// snapshot and replay nothing).
func BenchmarkRecovery(b *testing.B) {
	const n = 1 << 12
	seedDir := b.TempDir()
	s, err := Open(seedDir, Options{Fsync: FsyncAlways, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s.ObserveAcquire(lease.Lease{Name: i, Token: uint64(i + 1), Owner: "bench",
			ExpiresAt: time.Now().Add(time.Hour)})
	}
	if err := s.Crash(); err != nil {
		b.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(seedDir, journalName))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp(b.TempDir(), "boot")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, journalName), raw, 0o644); err != nil {
			b.Fatal(err)
		}
		nm, err := renaming.NewLevelArray(n)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		r, err := Open(dir, Options{Fsync: FsyncNever, CompactEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		mgr, err := lease.New(nm, lease.Config{TTL: time.Hour, SweepInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		restored, _, err := mgr.Restore(r.State())
		if err != nil {
			b.Fatal(err)
		}
		if restored != n {
			b.Fatalf("restored %d, want %d", restored, n)
		}

		b.StopTimer()
		mgr.Shutdown()
		if err := r.Crash(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
