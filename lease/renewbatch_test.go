package lease

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	renaming "repro"
)

// TestRenewBatchMixedResults drives one RenewBatch through every per-item
// outcome at once: a live lease renews, a stale token is ErrWrongToken,
// an expired lease is ErrExpired (and reclaimed on the spot), a never-
// leased name is ErrUnknownName — and crucially none of the failures
// poison the successes: the batch is per-item, not all-or-nothing.
func TestRenewBatchMixedResults(t *testing.T) {
	m, clk := newTestManager(t, 32)
	ctx := context.Background()

	good, err := m.Acquire("s", 0, nil) // default 10s TTL
	if err != nil {
		t.Fatal(err)
	}
	stale, err := m.Acquire("s", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	dying, err := m.Acquire("s", time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second) // dying lapses; good and stale live on

	const unknown = -1 // no namer ever grants a negative name

	items := []RenewItem{
		{Name: good.Name, Token: good.Token},
		{Name: stale.Name, Token: stale.Token + 99},
		{Name: dying.Name, Token: dying.Token},
		{Name: unknown, Token: 1},
	}
	before := m.Metrics()
	results, err := m.RenewBatch(ctx, items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(items) {
		t.Fatalf("got %d results for %d items", len(results), len(items))
	}
	if results[0].Err != nil {
		t.Fatalf("live lease renew err = %v", results[0].Err)
	}
	if want := clk.Now().Add(10 * time.Second); !results[0].Lease.ExpiresAt.Equal(want) {
		t.Fatalf("renewed deadline = %v, want %v", results[0].Lease.ExpiresAt, want)
	}
	if !errors.Is(results[1].Err, ErrWrongToken) {
		t.Fatalf("stale-token item err = %v, want ErrWrongToken", results[1].Err)
	}
	if !errors.Is(results[2].Err, ErrExpired) {
		t.Fatalf("expired item err = %v, want ErrExpired", results[2].Err)
	}
	if !errors.Is(results[3].Err, ErrUnknownName) {
		t.Fatalf("unknown item err = %v, want ErrUnknownName", results[3].Err)
	}

	after := m.Metrics()
	if after.Renewed != before.Renewed+1 {
		t.Fatalf("Renewed went %d -> %d, want +1", before.Renewed, after.Renewed)
	}
	if after.Rejected != before.Rejected+3 {
		t.Fatalf("Rejected went %d -> %d, want +3 (one per refused item)", before.Rejected, after.Rejected)
	}
	if after.Expired != before.Expired+1 {
		t.Fatalf("Expired went %d -> %d, want +1 (late renewal reclaims)", before.Expired, after.Expired)
	}
	// The expired lease was reclaimed by its own failed renewal.
	if _, ok := m.Get(dying.Name); ok {
		t.Fatal("expired lease still live after its batch renewal failed")
	}
	// The stale-token attack left the real holder untouched.
	if _, err := m.Renew(stale.Name, stale.Token, 0); err != nil {
		t.Fatalf("true holder renew after stale-token batch item: %v", err)
	}
}

// TestReleaseBatchMixedResults mirrors the renew test on the release
// path, including the released/expired accounting split.
func TestReleaseBatchMixedResults(t *testing.T) {
	m, clk := newTestManager(t, 32)
	ctx := context.Background()

	good, err := m.Acquire("s", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := m.Acquire("s", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	dying, err := m.Acquire("s", time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)

	items := []ReleaseItem{
		{Name: good.Name, Token: good.Token},
		{Name: stale.Name, Token: stale.Token + 99},
		{Name: dying.Name, Token: dying.Token},
	}
	results, err := m.ReleaseBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("live release err = %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, ErrWrongToken) {
		t.Fatalf("stale-token release err = %v, want ErrWrongToken", results[1].Err)
	}
	if !errors.Is(results[2].Err, ErrExpired) {
		t.Fatalf("expired release err = %v, want ErrExpired", results[2].Err)
	}
	if mt := m.Metrics(); mt.Released != 1 || mt.Expired != 1 || mt.Live != 1 {
		t.Fatalf("metrics = %+v, want Released 1, Expired 1, Live 1 (the stale-token survivor)", mt)
	}
	// Both the released and the reclaimed names are back in the pool: with
	// the true holder's lease still live, the rest of the capacity fits.
	if _, err := m.AcquireBatch(ctx, "s", 31, 0, nil); err != nil {
		t.Fatalf("refill after batch release: %v", err)
	}
}

// TestRenewBatchDuplicateItems: renewing the same lease twice in one
// batch is two renewals of one lease, both succeeding (the second extends
// from the same now), never a corruption.
func TestRenewBatchDuplicateItems(t *testing.T) {
	m, _ := newTestManager(t, 8)
	l, err := m.Acquire("s", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := RenewItem{Name: l.Name, Token: l.Token}
	results, err := m.RenewBatch(context.Background(), []RenewItem{it, it}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("duplicate item %d err = %v", i, r.Err)
		}
	}
	// A released lease's second batch occurrence, by contrast, is a
	// genuine per-item failure.
	rel := ReleaseItem{Name: l.Name, Token: l.Token}
	rres, err := m.ReleaseBatch(context.Background(), []ReleaseItem{rel, rel})
	if err != nil {
		t.Fatal(err)
	}
	if rres[0].Err != nil {
		t.Fatalf("first release err = %v", rres[0].Err)
	}
	if !errors.Is(rres[1].Err, ErrUnknownName) {
		t.Fatalf("double release in one batch err = %v, want ErrUnknownName", rres[1].Err)
	}
}

// TestRenewBatchCancelled: a context already done is a call-level
// rejection; one cancelled mid-walk (not reproducible deterministically
// without hooks, so exercised at entry only) must wrap
// renaming.ErrCancelled.
func TestRenewBatchCancelled(t *testing.T) {
	m, _ := newTestManager(t, 8)
	l, err := m.Acquire("s", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RenewBatch(ctx, []RenewItem{{Name: l.Name, Token: l.Token}}, 0); !errors.Is(err, renaming.ErrCancelled) {
		t.Fatalf("cancelled RenewBatch err = %v, want ErrCancelled", err)
	}
	if _, err := m.ReleaseBatch(ctx, []ReleaseItem{{Name: l.Name, Token: l.Token}}); !errors.Is(err, renaming.ErrCancelled) {
		t.Fatalf("cancelled ReleaseBatch err = %v, want ErrCancelled", err)
	}
	// Nothing was touched: the lease still renews with its token.
	if _, err := m.Renew(l.Name, l.Token, 0); err != nil {
		t.Fatalf("renew after cancelled batches: %v", err)
	}
}

// TestRenewBatchEmpty: a zero-item batch is a no-op, not an error.
func TestRenewBatchEmpty(t *testing.T) {
	m, _ := newTestManager(t, 8)
	if res, err := m.RenewBatch(context.Background(), nil, 0); err != nil || res != nil {
		t.Fatalf("empty RenewBatch = %v, %v, want nil, nil", res, err)
	}
	if res, err := m.ReleaseBatch(context.Background(), nil); err != nil || res != nil {
		t.Fatalf("empty ReleaseBatch = %v, %v, want nil, nil", res, err)
	}
}

// TestRenewBatchConcurrentHeartbeat races heartbeating sessions (each
// renewing its own standing set via RenewBatch) against an aggressive
// sweeper and churning acquire/release traffic, under -race. No session
// may ever lose a lease it heartbeats on time.
func TestRenewBatchConcurrentHeartbeat(t *testing.T) {
	const (
		sessions  = 4
		perSess   = 16
		rounds    = 150
		churners  = 2
		churnIter = 200
	)
	nm, err := renaming.NewLevelArray(256)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(nm, Config{TTL: time.Minute, SweepInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			leases, err := m.AcquireBatch(context.Background(), "sess", perSess, 0, nil)
			if err != nil {
				t.Errorf("session %d acquire: %v", id, err)
				return
			}
			items := make([]RenewItem, len(leases))
			for i, l := range leases {
				items[i] = RenewItem{Name: l.Name, Token: l.Token}
			}
			for r := 0; r < rounds; r++ {
				results, err := m.RenewBatch(context.Background(), items, 0)
				if err != nil {
					t.Errorf("session %d round %d: %v", id, r, err)
					return
				}
				for i, res := range results {
					if res.Err != nil {
						t.Errorf("session %d lost lease %d mid-heartbeat: %v", id, items[i].Name, res.Err)
						return
					}
				}
			}
			rel := make([]ReleaseItem, len(items))
			for i, it := range items {
				rel[i] = ReleaseItem{Name: it.Name, Token: it.Token}
			}
			results, err := m.ReleaseBatch(context.Background(), rel)
			if err != nil {
				t.Errorf("session %d release: %v", id, err)
				return
			}
			for i, res := range results {
				if res.Err != nil {
					t.Errorf("session %d release item %d: %v", id, i, res.Err)
				}
			}
		}(s)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < churnIter; i++ {
				l, err := m.Acquire("churn", time.Millisecond, nil)
				if err != nil {
					t.Errorf("churn acquire: %v", err)
					return
				}
				_ = l // abandoned: the sweeper reclaims it
			}
		}()
	}
	wg.Wait()

	// Drain the abandoned churn leases, then nothing may be left.
	deadline := time.Now().Add(5 * time.Second)
	for m.live.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("live count stuck at %d after drain", m.live.Load())
		}
		m.SweepOnce()
		time.Sleep(time.Millisecond)
	}
}
