package lease

import (
	"testing"
	"time"

	renaming "repro"
	"repro/internal/xrand"
)

func TestExpiryHeapOrdering(t *testing.T) {
	rng := xrand.NewStream(1, 1)
	base := time.Unix(1000, 0)
	var h expiryHeap
	const n = 500
	for i := 0; i < n; i++ {
		h.push(heapEntry{at: base.Add(time.Duration(rng.Intn(10_000)) * time.Millisecond), name: i})
	}
	prev := time.Time{}
	for i := 0; i < n; i++ {
		e := h.pop()
		if e.at.Before(prev) {
			t.Fatalf("pop %d out of order: %v before %v", i, e.at, prev)
		}
		prev = e.at
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d left", len(h))
	}
}

func TestExpiryHeapInit(t *testing.T) {
	base := time.Unix(1000, 0)
	h := expiryHeap{
		{at: base.Add(5 * time.Second)},
		{at: base.Add(1 * time.Second)},
		{at: base.Add(4 * time.Second)},
		{at: base.Add(2 * time.Second)},
		{at: base.Add(3 * time.Second)},
	}
	h.init()
	for want := 1; want <= 5; want++ {
		if got := h.pop().at; !got.Equal(base.Add(time.Duration(want) * time.Second)) {
			t.Fatalf("pop = %v, want +%ds", got, want)
		}
	}
}

// TestHeapCompactionBoundsMemory: with the sweeper disabled, renewals push
// one lazy entry each; compaction must keep the heap O(live) instead of
// letting it grow with the renewal count.
func TestHeapCompactionBoundsMemory(t *testing.T) {
	nm, err := renaming.NewLevelArray(8)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: time.Hour, SweepInterval: -1, Shards: 1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	l, err := m.Acquire("w", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if _, err := m.Renew(l.Name, l.Token, 0); err != nil {
			t.Fatal(err)
		}
	}
	sh := m.shard(l.Name)
	sh.mu.Lock()
	heapLen, live := len(sh.expiries), len(sh.leases)
	sh.mu.Unlock()
	if heapLen >= 2*live+compactMinHeap {
		t.Fatalf("heap grew to %d entries over %d live leases; compaction never ran", heapLen, live)
	}
	// The surviving entries still reclaim correctly.
	clk.Advance(2 * time.Hour)
	if n := m.SweepOnce(); n != 1 {
		t.Fatalf("SweepOnce after compaction = %d, want 1", n)
	}
}

// TestHeapCompactionOnLazyReclaim: with the sweeper disabled, reclamation
// can happen exclusively through lazy paths (here Get on an expired
// lease), each of which strands one stale heap entry; reclaimLocked's
// compaction check must keep the heap bounded anyway.
func TestHeapCompactionOnLazyReclaim(t *testing.T) {
	nm, err := renaming.NewLevelArray(8)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: time.Second, SweepInterval: -1, Shards: 1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 5000; i++ {
		l, err := m.Acquire("w", 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		clk.Advance(2 * time.Second)
		if _, ok := m.Get(l.Name); ok {
			t.Fatal("expired lease still live")
		}
	}
	sh := &m.shards[0]
	sh.mu.Lock()
	heapLen, live := len(sh.expiries), len(sh.leases)
	sh.mu.Unlock()
	if heapLen >= 2*live+compactMinHeap {
		t.Fatalf("heap grew to %d entries over %d live leases under lazy reclaim", heapLen, live)
	}
}
