package lease

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	renaming "repro"
)

// newCappedManager builds a manager with MaxLive = capacity so batch
// reservations hit a real cap.
func newCappedManager(t *testing.T, capacity int) (*Manager, *fakeClock) {
	t.Helper()
	nm, err := renaming.NewLevelArray(capacity)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{
		TTL:           10 * time.Second,
		SweepInterval: -1,
		MaxLive:       capacity,
		Now:           clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, clk
}

func TestAcquireBatchGrantsDistinctLeases(t *testing.T) {
	m, _ := newCappedManager(t, 64)
	if _, err := m.AcquireBatch(context.Background(), "batcher", 0, 0, nil); !errors.Is(err, renaming.ErrBadConfig) {
		t.Fatalf("AcquireBatch(k=0) err = %v, want ErrBadConfig", err)
	}

	const k = 16
	got, err := m.AcquireBatch(context.Background(), "batcher", k, 0, map[string]string{"job": "b1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != k {
		t.Fatalf("granted %d leases, want %d", len(got), k)
	}
	names := map[int]bool{}
	tokens := map[uint64]bool{}
	for _, l := range got {
		if names[l.Name] {
			t.Fatalf("duplicate name %d in batch", l.Name)
		}
		if tokens[l.Token] {
			t.Fatalf("duplicate fencing token %d in batch", l.Token)
		}
		names[l.Name] = true
		tokens[l.Token] = true
		if l.Owner != "batcher" || l.Meta["job"] != "b1" {
			t.Fatalf("lease fields incomplete: %+v", l)
		}
	}
	if got := m.Metrics(); got.Live != k || got.Acquired != int64(k) {
		t.Fatalf("metrics after batch = %+v, want Live=Acquired=%d", got, k)
	}
	// Every batch lease is individually renewable and releasable with its
	// own token.
	for _, l := range got {
		if _, err := m.Renew(l.Name, l.Token, 0); err != nil {
			t.Fatalf("renew batch lease %d: %v", l.Name, err)
		}
		if err := m.Release(l.Name, l.Token); err != nil {
			t.Fatalf("release batch lease %d: %v", l.Name, err)
		}
	}
	if got := m.Metrics(); got.Live != 0 {
		t.Fatalf("Live = %d after releasing whole batch, want 0", got.Live)
	}
}

// TestAcquireBatchAllOrNothing asks for more leases than the capacity cap
// allows: the batch must fail without consuming capacity or names.
func TestAcquireBatchAllOrNothing(t *testing.T) {
	const capacity = 8
	m, _ := newCappedManager(t, capacity)
	if _, err := m.AcquireBatch(context.Background(), "greedy", capacity+1, 0, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-capacity batch err = %v, want ErrCapacity", err)
	}
	// Nothing leaked: the full capacity is still grantable.
	leases, err := m.AcquireBatch(context.Background(), "ok", capacity, 0, nil)
	if err != nil {
		t.Fatalf("full-capacity batch after failed batch: %v", err)
	}
	if len(leases) != capacity {
		t.Fatalf("granted %d, want %d", len(leases), capacity)
	}
}

// TestAcquireBatchExhaustionRollsBack drives the namer itself (not the
// capacity cap) out of names mid-batch: every name the failed batch took
// must return to the pool.
func TestAcquireBatchExhaustionRollsBack(t *testing.T) {
	nm, err := renaming.NewLinearScan(8)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	m, err := New(nm, Config{TTL: 10 * time.Second, SweepInterval: -1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Beyond the namespace: rejected up front, before any allocation or
	// namer probing.
	if _, err := m.AcquireBatch(context.Background(), "w", 9, 0, nil); !errors.Is(err, renaming.ErrNamespaceExhausted) {
		t.Fatalf("batch beyond namespace err = %v, want ErrNamespaceExhausted", err)
	}
	// Genuine mid-batch exhaustion: with one name held, a namespace-sized
	// batch passes the size check, takes real names, runs out, and must
	// roll back every one of them.
	held, err := m.Acquire("holder", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AcquireBatch(context.Background(), "w", 8, 0, nil); !errors.Is(err, renaming.ErrNamespaceExhausted) {
		t.Fatalf("batch over partly-full namer err = %v, want ErrNamespaceExhausted", err)
	}
	if err := m.Release(held.Name, held.Token); err != nil {
		t.Fatalf("release held lease after failed batch: %v", err)
	}
	leases, err := m.AcquireBatch(context.Background(), "w", 8, 0, nil)
	if err != nil {
		t.Fatalf("namespace-sized batch after rollback: %v", err)
	}
	if len(leases) != 8 {
		t.Fatalf("granted %d, want 8", len(leases))
	}
}

func TestAcquireCtxCancelled(t *testing.T) {
	m, _ := newCappedManager(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.AcquireCtx(ctx, "w", 0, nil)
	if !errors.Is(err, renaming.ErrCancelled) {
		t.Fatalf("cancelled AcquireCtx err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled AcquireCtx err = %v, want it to wrap context.Canceled", err)
	}
	if _, err := m.AcquireBatch(ctx, "w", 4, 0, nil); !errors.Is(err, renaming.ErrCancelled) {
		t.Fatalf("cancelled AcquireBatch err = %v, want ErrCancelled", err)
	}
	// The reservation was returned: the full capacity still fits.
	if _, err := m.AcquireBatch(context.Background(), "w", 8, 0, nil); err != nil {
		t.Fatalf("full batch after cancelled attempts: %v", err)
	}
}

// TestAcquireBatchConcurrent races many batch acquisitions against the
// capacity cap under -race: grants must never exceed MaxLive and every
// granted lease must carry a unique name.
func TestAcquireBatchConcurrent(t *testing.T) {
	const (
		capacity = 128
		workers  = 8
		batch    = 8
		rounds   = 20
	)
	m, _ := newCappedManager(t, capacity)
	var mu sync.Mutex
	held := map[int]string{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				leases, err := m.AcquireBatch(context.Background(), "w", batch, 0, nil)
				if errors.Is(err, ErrCapacity) {
					continue
				}
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
				mu.Lock()
				for _, l := range leases {
					if owner, dup := held[l.Name]; dup {
						t.Errorf("name %d granted to two live holders (%s)", l.Name, owner)
					}
					held[l.Name] = "w"
				}
				mu.Unlock()
				for _, l := range leases {
					mu.Lock()
					delete(held, l.Name)
					mu.Unlock()
					if err := m.Release(l.Name, l.Token); err != nil {
						t.Errorf("release %d: %v", l.Name, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := m.Metrics(); got.Live != 0 {
		t.Fatalf("Live = %d after all batches released, want 0", got.Live)
	}
}

// TestAcquireBatchCloseRace races batches against Close: afterwards the
// namer must have every name back (acquiring the full capacity from a
// fresh manager over the same namer succeeds).
func TestAcquireBatchCloseRace(t *testing.T) {
	const capacity = 64
	nm, err := renaming.NewLevelArray(capacity)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(nm, Config{TTL: time.Minute, SweepInterval: -1, MaxLive: capacity})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := m.AcquireBatch(context.Background(), "w", 8, 0, nil); errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	m.Close()
	wg.Wait()

	// Every name is back in the pool: a fresh manager over the same namer
	// can hand out the namer's full capacity.
	m2, err := New(nm, Config{TTL: time.Minute, SweepInterval: -1, MaxLive: capacity})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := m2.AcquireBatch(context.Background(), "w", capacity, 0, nil); err != nil {
		t.Fatalf("full-capacity batch after close race: %v", err)
	}
}
