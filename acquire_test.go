package renaming

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// blockingAlg spins without probing until the environment reports an
// interrupt — a stand-in for an acquisition blocked mid-probe-sequence.
type blockingAlg struct {
	entered chan struct{} // closed once GetName is running
}

func (b *blockingAlg) GetName(env core.Env) int {
	close(b.entered)
	for !core.Interrupted(env) {
		time.Sleep(100 * time.Microsecond)
	}
	return core.Cancelled
}

func (b *blockingAlg) Namespace() int { return 8 }

// TestCancelMidAcquisition is the blocked-acquire contract: an Acquire
// stuck inside its probe sequence must return ErrCancelled wrapping
// ctx.Err() as soon as the context is cancelled, and must not leave any
// TAS slot set.
func TestCancelMidAcquisition(t *testing.T) {
	alg := &blockingAlg{entered: make(chan struct{})}
	nm := newNamer(alg, defaultOptions())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := nm.Acquire(ctx)
		done <- err
	}()

	<-alg.entered // the acquire is provably mid-probe-sequence
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want it to wrap context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Acquire never returned")
	}

	// No slot leaked: every location in the space is still unset.
	for u := 0; u < alg.Namespace(); u++ {
		if err := nm.Release(u); !errors.Is(err, ErrNotHeld) {
			t.Fatalf("slot %d set after cancelled acquire (Release err = %v)", u, err)
		}
	}
}

// raceWinAlg wins a TAS, then blocks until interrupted and returns the won
// slot anyway — modelling the race window where a probe succeeds at the
// same instant the context is cancelled.
type raceWinAlg struct{}

func (raceWinAlg) GetName(env core.Env) int {
	if !env.TAS(3) {
		return core.NoName
	}
	for !core.Interrupted(env) {
		time.Sleep(100 * time.Microsecond)
	}
	return 3
}

func (raceWinAlg) Namespace() int { return 8 }

// TestCancelAfterWinReleasesSlot covers the other half of the no-leak
// contract: when the algorithm returns a won slot but the context has
// already ended, the driver must hand the slot back and report
// ErrCancelled — not return a name the caller will never use.
func TestCancelAfterWinReleasesSlot(t *testing.T) {
	nm := newNamer(raceWinAlg{}, defaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := nm.Acquire(ctx)
		done <- err
	}()
	time.Sleep(time.Millisecond)
	cancel()
	err := <-done
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if err := nm.Release(3); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("won slot not handed back after cancellation (Release err = %v)", err)
	}
}

// TestCancelMidBatchRollsBack cancels an AcquireN between acquisitions:
// the batch must fail with ErrCancelled and hand back every name it had
// already taken.
func TestCancelMidBatchRollsBack(t *testing.T) {
	// cancelAfterAlg wraps a linear scan and fires cancel() after the
	// third successful acquisition, so the batch fails with three names in
	// hand.
	ctx, cancel := context.WithCancel(context.Background())
	alg := &cancelAfterAlg{limit: 3, cancel: cancel, m: 16}
	nm := newNamer(alg, defaultOptions())

	_, err := nm.AcquireN(ctx, 10)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	for u := 0; u < alg.m; u++ {
		if err := nm.Release(u); !errors.Is(err, ErrNotHeld) {
			t.Fatalf("slot %d still set after batch rollback (Release err = %v)", u, err)
		}
	}
	// The namer is unharmed: a fresh batch gets all ten names.
	names, err := nm.AcquireN(context.Background(), 10)
	if err != nil {
		t.Fatalf("fresh batch after rollback: %v", err)
	}
	if len(names) != 10 {
		t.Fatalf("fresh batch granted %d names, want 10", len(names))
	}
}

// cancelAfterAlg linear-scans its space and cancels the context after
// `limit` wins.
type cancelAfterAlg struct {
	limit  int
	wins   int
	cancel context.CancelFunc
	m      int
}

func (c *cancelAfterAlg) GetName(env core.Env) int {
	for u := 0; u < c.m; u++ {
		if env.TAS(u) {
			c.wins++
			if c.wins == c.limit {
				c.cancel()
			}
			return u
		}
	}
	return core.NoName
}

func (c *cancelAfterAlg) Namespace() int { return c.m }

// TestAcquireNSingleStream checks the amortization claim: a batch of k
// names consumes one PRNG stream, where k individual Acquires consume k.
func TestAcquireNSingleStream(t *testing.T) {
	nm, err := NewReBatching(64, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	before := nm.stream.Load()
	if _, err := nm.AcquireN(context.Background(), 16); err != nil {
		t.Fatal(err)
	}
	if got := nm.stream.Load() - before; got != 1 {
		t.Fatalf("batch of 16 consumed %d PRNG streams, want 1", got)
	}
	before = nm.stream.Load()
	for i := 0; i < 16; i++ {
		if _, err := nm.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if got := nm.stream.Load() - before; got != 16 {
		t.Fatalf("16 single acquires consumed %d PRNG streams, want 16", got)
	}
}

// TestAcquireMatchesGetNameSequence pins the compatibility contract:
// sequential Acquire calls with a fixed seed reproduce the exact name
// sequence GetName produced before the redesign (and still produces).
func TestAcquireMatchesGetNameSequence(t *testing.T) {
	mk := func() Namer {
		nm, err := NewReBatching(64, WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		return nm
	}
	a, b := mk(), mk()
	for i := 0; i < 64; i++ {
		ua, err := a.GetName()
		if err != nil {
			t.Fatal(err)
		}
		ub, err := b.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if ua != ub {
			t.Fatalf("call %d: GetName() = %d, Acquire() = %d", i, ua, ub)
		}
	}
}

// TestAcquireCancelledUnderRace exercises real namers with contexts that
// cancel at random points while concurrent acquisitions run; meant for
// -race. Invariant: after all cancelled/successful calls settle and every
// successful name is released, the full capacity is grantable again.
func TestAcquireCancelledUnderRace(t *testing.T) {
	nm, err := NewLevelArray(64, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	type result struct {
		name int
		ok   bool
	}
	results := make(chan result, workers*8)
	for round := 0; round < 8; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var pending int
		for w := 0; w < workers; w++ {
			pending++
			go func() {
				u, err := nm.Acquire(ctx)
				if err != nil {
					if !errors.Is(err, ErrCancelled) {
						t.Errorf("unexpected acquire error: %v", err)
					}
					results <- result{ok: false}
					return
				}
				results <- result{name: u, ok: true}
			}()
		}
		cancel()
		for i := 0; i < pending; i++ {
			r := <-results
			if r.ok {
				if err := nm.Release(r.name); err != nil {
					t.Fatalf("release %d: %v", r.name, err)
				}
			}
		}
	}
	// Every slot must be free again.
	names, err := nm.AcquireN(context.Background(), 64)
	if err != nil {
		t.Fatalf("full-capacity batch after cancel storms: %v", err)
	}
	if len(names) != 64 {
		t.Fatalf("granted %d, want 64", len(names))
	}
}
