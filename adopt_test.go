package renaming

import (
	"context"
	"errors"
	"testing"
)

// TestAdopt pins the restart-recovery extension: Adopt seizes a specific
// name as if acquired, so a lease service replaying durable state can
// re-occupy exactly the names that had holders before fielding fresh
// acquisitions.
func TestAdopt(t *testing.T) {
	nm, err := NewLevelArray(4)
	if err != nil {
		t.Fatal(err)
	}
	const victim = 0 // level-0 slot: reachable by random probes
	if err := nm.Adopt(victim); err != nil {
		t.Fatal(err)
	}
	// Adopting a held name must fail with the typed sentinel.
	if err := nm.Adopt(victim); !errors.Is(err, ErrNameHeld) {
		t.Fatalf("double Adopt = %v, want ErrNameHeld", err)
	}
	// No acquisition may be granted the adopted name.
	seen := map[int]bool{}
	for i := 0; i < nm.Namespace()-1; i++ {
		u, err := nm.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if u == victim {
			t.Fatalf("Acquire handed out adopted name %d", victim)
		}
		if seen[u] {
			t.Fatalf("duplicate name %d", u)
		}
		seen[u] = true
	}
	// The namespace is now full: the adopted slot counts as held.
	if _, err := nm.Acquire(context.Background()); !errors.Is(err, ErrNamespaceExhausted) {
		t.Fatalf("Acquire over full namespace = %v, want ErrNamespaceExhausted", err)
	}
	// An adopted name releases like an acquired one and becomes
	// grantable again.
	if err := nm.Release(victim); err != nil {
		t.Fatal(err)
	}
	u, err := nm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if u != victim {
		t.Fatalf("after releasing the only free name, Acquire returned %d, want %d", u, victim)
	}
}

// TestAdoptRejectsOutOfRange pins the bounds check's error taxonomy.
func TestAdoptRejectsOutOfRange(t *testing.T) {
	nm, err := NewLevelArray(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []int{-1, nm.Namespace(), nm.Namespace() + 100} {
		if err := nm.Adopt(name); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("Adopt(%d) = %v, want ErrBadConfig", name, err)
		}
	}
}

// TestAdoptDoesNotCountProbes pins that adoption is recovery
// bookkeeping, invisible to WithCounting's probe statistics.
func TestAdoptDoesNotCountProbes(t *testing.T) {
	nm, err := NewLevelArray(8, WithCounting())
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.Adopt(2); err != nil {
		t.Fatal(err)
	}
	ops, wins, ok := nm.Probes()
	if !ok {
		t.Fatal("WithCounting namer reports no probe counters")
	}
	if ops != 0 || wins != 0 {
		t.Fatalf("Adopt perturbed probe stats: ops=%d wins=%d, want 0/0", ops, wins)
	}
}
