package renaming

import (
	"context"
	"errors"

	"repro/internal/splitter"
)

// ErrOneShot is returned by Release on namers whose algorithm is
// inherently one-shot (Moir–Anderson splitter renaming).
var ErrOneShot = errors.New("renaming: one-shot namer does not support Release")

// MoirAnderson is the classic deterministic wait-free renaming of Moir and
// Anderson (reference [31] of the paper), built from read/write registers
// only — no test-and-set, no randomness. Each caller walks a triangular
// grid of splitters in O(k) register operations and receives a name below
// k(k+1)/2, where k is the actual contention.
//
// It is the paper's natural deterministic comparator: a *quadratic*
// namespace at linear step cost, against which the randomized TAS-based
// algorithms deliver O(k) names in O(log log k) probes. Experiment F6
// measures the trade-off.
type MoirAnderson struct {
	grid *splitter.Grid
}

// NewMoirAnderson builds a one-shot deterministic namer for at most n
// concurrent participants. Its namespace is n(n+1)/2 — quadratic, the
// price of determinism (Moir–Anderson 1995).
func NewMoirAnderson(n int) (*MoirAnderson, error) {
	g, err := splitter.NewGrid(n)
	if err != nil {
		return nil, err
	}
	return &MoirAnderson{grid: g}, nil
}

// GetName implements Namer.
func (m *MoirAnderson) GetName() (int, error) {
	u := m.grid.GetName()
	if u < 0 {
		return 0, ErrNamespaceExhausted
	}
	return u, nil
}

// Acquire implements Namer. The splitter grid walk is O(k) register
// operations with no blocking probe sequence to abandon, so cancellation
// is honoured only at entry.
func (m *MoirAnderson) Acquire(ctx context.Context) (int, error) {
	if ctx != nil && ctx.Err() != nil {
		return 0, cancelled(ctx)
	}
	return m.GetName()
}

// AcquireN implements Namer. Moir–Anderson renaming is one-shot: a grid
// path, once walked, is consumed whether or not the caller keeps the name.
// Cancellation is therefore checked before each walk — never mid-batch
// with names in hand — but a batch that fails on exhaustion has still
// consumed its partial acquisitions (there is no Release to undo them),
// exactly as individual failed GetName calls do.
func (m *MoirAnderson) AcquireN(ctx context.Context, k int) ([]int, error) {
	if k < 1 {
		return nil, badConfig("moiranderson", "AcquireN", "", "need k >= 1")
	}
	names := make([]int, 0, k)
	for len(names) < k {
		u, err := m.Acquire(ctx)
		if err != nil {
			return nil, err
		}
		names = append(names, u)
	}
	return names, nil
}

// Namespace implements Namer.
func (m *MoirAnderson) Namespace() int { return m.grid.Namespace() }

// Release implements Namer; Moir–Anderson renaming is one-shot, so Release
// always fails with ErrOneShot.
func (m *MoirAnderson) Release(int) error { return ErrOneShot }

// RegisterSteps returns the total read/write register operations performed
// so far — the read-write model's analogue of TAS probe counts.
func (m *MoirAnderson) RegisterSteps() int64 { return m.grid.Steps() }

var _ Namer = (*MoirAnderson)(nil)
